// Package cluster composes the simulated testbed: nodes with CPU cores, a
// DRAM budget, and a local slice of the Deep Memory and Storage Hierarchy
// (DMSH), joined by a network fabric. It also models the Linux OOM killer
// (allocations beyond physical DRAM fail the job, the paper's Fig. 6
// behaviour) and provides the resource monitor that stands in for the
// paper's pymonitor tool.
package cluster

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"megammap/internal/blob"
	"megammap/internal/device"
	"megammap/internal/faults"
	"megammap/internal/simnet"
	"megammap/internal/telemetry"
	"megammap/internal/topology"
	"megammap/internal/vtime"
)

// TierSpec describes one storage tier present on every node.
type TierSpec struct {
	Name    string
	Profile device.Profile
}

// Spec describes a homogeneous cluster of compute nodes, optionally
// extended by fabric-attached memory-pool nodes (Topology). Nodes counts
// the compute side only; pool nodes are appended after them.
type Spec struct {
	Nodes     int
	CoresPer  int   // CPU cores (hardware threads) per node
	DRAMPer   int64 // physical DRAM per node, bytes
	Tiers     []TierSpec
	Link      simnet.LinkProfile
	PFS       device.Profile // shared parallel filesystem backend
	PFSFanout int            // concurrent PFS servers (default 4)

	// Topology describes the disaggregated-memory side. The zero value
	// is a uniform compute-only cluster, byte-identical to a Spec built
	// before the field existed.
	Topology topology.Spec
}

// DefaultTestbed mirrors the paper's per-node hardware scaled by
// 1/1024 (48 GB DRAM -> 48 MB, 128 GB NVMe -> 128 MB, ...), with device
// bandwidths kept real so time ratios are preserved.
func DefaultTestbed(nodes int) Spec {
	return Spec{
		Nodes:    nodes,
		CoresPer: 48,
		DRAMPer:  48 * device.MB,
		Tiers: []TierSpec{
			{Name: "nvme", Profile: device.NVMeProfile(128 * device.MB)},
			{Name: "ssd", Profile: device.SSDProfile(256 * device.MB)},
			{Name: "hdd", Profile: device.HDDProfile(1024 * device.MB)},
		},
		Link:      simnet.RoCE40(),
		PFS:       device.PFSProfile(64 * device.GB),
		PFSFanout: 4,
	}
}

// ErrOOM reports that a node exceeded its physical DRAM; the Linux default
// is to kill the offending job.
type ErrOOM struct {
	Node int
	Need int64
	Free int64
}

func (e *ErrOOM) Error() string {
	return fmt.Sprintf("cluster: node %d out of memory (need %d bytes, %d free): job killed", e.Node, e.Need, e.Free)
}

// aggregates holds cluster-wide totals maintained incrementally at every
// allocation, free, and device write, so telemetry sampling and end-of-run
// accounting are O(1) in the node count instead of per-node walks.
type aggregates struct {
	dramUsed    int64
	dramPeakSum int64   // sum of per-node DRAM high-water marks
	dramPeakMax int64   // largest per-node DRAM high-water mark
	tierUsed    []int64 // per-tier stored bytes, indexed like Spec.Tiers
	poolUsed    int64   // bytes stored across all memory-pool arenas
	poolPeak    int64   // high-water mark of poolUsed
	storageCost float64 // total tier capacity cost (static per spec)
}

// Node is one machine of the cluster.
type Node struct {
	ID      int
	Role    topology.Role
	Cores   *vtime.Resource
	Devices map[string]*device.Device // tier name -> device

	dramCap  int64
	dramUsed int64
	dramPeak int64
	oom      bool
	agg      *aggregates // cluster totals, nil for a free-standing node
}

// DRAMCap returns the node's physical DRAM in bytes.
func (n *Node) DRAMCap() int64 { return n.dramCap }

// DRAMUsed returns the bytes currently allocated.
func (n *Node) DRAMUsed() int64 { return n.dramUsed }

// DRAMPeak returns the high-water mark of DRAM allocation.
func (n *Node) DRAMPeak() int64 { return n.dramPeak }

// OOM reports whether this node has already OOM-killed the job.
func (n *Node) OOM() bool { return n.oom }

// Alloc reserves bytes of DRAM, failing with ErrOOM if the node would
// exceed physical memory.
func (n *Node) Alloc(bytes int64) error {
	if n.dramUsed+bytes > n.dramCap {
		n.oom = true
		return &ErrOOM{Node: n.ID, Need: bytes, Free: n.dramCap - n.dramUsed}
	}
	n.dramUsed += bytes
	if a := n.agg; a != nil {
		a.dramUsed += bytes
		if n.dramUsed > n.dramPeak {
			a.dramPeakSum += n.dramUsed - n.dramPeak
			if n.dramUsed > a.dramPeakMax {
				a.dramPeakMax = n.dramUsed
			}
		}
	}
	if n.dramUsed > n.dramPeak {
		n.dramPeak = n.dramUsed
	}
	return nil
}

// Free releases bytes of DRAM.
func (n *Node) Free(bytes int64) {
	n.dramUsed -= bytes
	if n.dramUsed < 0 {
		panic("cluster: freed more DRAM than allocated")
	}
	if n.agg != nil {
		n.agg.dramUsed -= bytes
	}
}

// Compute occupies one core of the node for d of virtual time. It is how
// applications charge their computation to the clock.
func (n *Node) Compute(p *vtime.Proc, d vtime.Duration) {
	if d <= 0 {
		return
	}
	n.Cores.Use(p, 1, d)
}

// Cluster is the full simulated testbed. Nodes holds the compute nodes
// first and any memory-pool nodes after them; Computes() is the split
// point.
type Cluster struct {
	Spec     Spec
	Engine   *vtime.Engine
	Nodes    []*Node
	Fabric   *simnet.Fabric
	PFS      *device.Device
	pfsSrv   *vtime.Resource
	pfsIDs   *blob.Interner // PFS object names; devices store by blob.ID
	inj      *faults.Injector
	tel      *telemetry.Telemetry
	agg      aggregates
	computes int
}

// InstallFaults activates a fault plan: the cluster's stable injector
// (created at New, already wired into the fabric, every node device, and
// the PFS) is reconfigured with the plan, and a chaos daemon is spawned
// to execute the plan's node crashes and revivals at their virtual
// times. Because the injector handle never changes, InstallFaults may be
// called before or after higher layers (hermes, core) are built — they
// capture the same injector either way. Installing mid-run is supported:
// plans whose fault times postdate the call behave as authored.
func (c *Cluster) InstallFaults(plan faults.Plan) *faults.Injector {
	inj := c.inj
	inj.Reconfigure(plan)
	inj.SetTelemetry(c.tel.Tracer())  // no-op unless telemetry came first
	inj.SetRegistry(c.tel.Registry()) // mirror retry.* into the metrics export
	if events := c.chaosTimeline(plan); len(events) > 0 {
		c.Engine.SpawnDaemon("chaos", func(p *vtime.Proc) {
			for _, ev := range events {
				if d := ev.at - p.Now(); d > 0 {
					p.Sleep(d)
				}
				if ev.revive {
					// A revived node rejoins with cold storage: whatever
					// its devices held died with it.
					c.purgeNode(ev.node)
					inj.ReviveNode(ev.node)
				} else {
					inj.CrashNode(ev.node)
				}
			}
		})
	}
	return inj
}

// chaosEvent is one entry of the merged crash/revive timeline.
type chaosEvent struct {
	at     vtime.Duration
	node   int
	revive bool
}

// chaosTimeline merges a plan's crashes and revivals into one schedule,
// ordered by virtual time (crashes first at equal instants, then plan
// order — the sort is stable, so same-seed runs replay identically).
func (c *Cluster) chaosTimeline(plan faults.Plan) []chaosEvent {
	events := make([]chaosEvent, 0, len(plan.Crashes)+len(plan.Revives))
	for _, cr := range plan.Crashes {
		events = append(events, chaosEvent{at: cr.At, node: cr.Node})
	}
	for _, rv := range plan.Revives {
		events = append(events, chaosEvent{at: rv.At, node: rv.Node, revive: true})
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].at != events[j].at {
			return events[i].at < events[j].at
		}
		return !events[i].revive && events[j].revive
	})
	return events
}

// purgeNode wipes every storage tier of a node (uncharged): crashed
// hardware comes back empty. Pool nodes lose their arena the same way.
func (c *Cluster) purgeNode(node int) {
	n := c.Nodes[node]
	for _, ts := range c.Spec.Tiers {
		if d := n.Devices[ts.Name]; d != nil {
			d.Purge()
		}
	}
	if d := n.Devices[topology.PoolTier]; d != nil {
		d.Purge()
	}
}

// Faults returns the cluster's fault injector. It is never nil: a
// fault-free cluster carries an injector with an empty plan, which
// injects nothing but still serves retry policy and counters.
func (c *Cluster) Faults() *faults.Injector { return c.inj }

// InstallTelemetry activates a telemetry plane: the span tracer is wired
// into every node device, the PFS, and the fault injector, and — when the
// options ask for sampling — a vtime-ticker daemon records cluster
// resource samples each period. Like InstallFaults, call it after New and
// before building higher layers (hermes, core), which capture the plane
// at construction. Install order relative to InstallFaults is free.
func (c *Cluster) InstallTelemetry(opts telemetry.Options) *telemetry.Telemetry {
	tel := telemetry.New(opts)
	c.tel = tel
	trc := tel.Tracer()
	for _, n := range c.Nodes {
		for _, d := range n.Devices {
			d.SetTelemetry(trc, n.ID)
		}
	}
	c.PFS.SetTelemetry(trc, -1)
	c.inj.SetTelemetry(trc)           // no-op unless faults came first
	c.inj.SetRegistry(tel.Registry()) // mirror retry.* into the metrics export
	if reg := tel.Registry(); reg != nil && c.Pools() > 0 {
		// Disaggregated-memory gauges: arena occupancy from the
		// incrementally maintained aggregates, and the fabric's
		// pool-transfer queueing delay as a histogram (p50/p99 in the
		// standard export).
		used := reg.Gauge(telemetry.Key{Name: "pool.used", Node: -1, Subsystem: "cluster", Tier: topology.PoolTier})
		peak := reg.Gauge(telemetry.Key{Name: "pool.peak", Node: -1, Subsystem: "cluster", Tier: topology.PoolTier})
		for _, n := range c.Nodes[c.computes:] {
			n.Devices[topology.PoolTier].OnUsedChange(func(delta int64) {
				used.Set(c.agg.poolUsed)
				peak.Set(c.agg.poolPeak)
			})
		}
		wait := reg.Histogram(telemetry.Key{Name: "pool.queue_wait_ns", Node: -1, Subsystem: "simnet", Tier: topology.PoolTier})
		c.Fabric.SetPoolWaitObserver(func(w vtime.Duration) { wait.Observe(int64(w)) })
	}
	if smp := tel.Sampler(); smp.Period() > 0 {
		c.spawnSampler(smp)
	}
	return tel
}

// Telemetry returns the installed telemetry plane, or nil when running
// without one. All plane accessors are nil-safe, so layers may capture
// c.Telemetry().Tracer() etc. unconditionally.
func (c *Cluster) Telemetry() *telemetry.Telemetry { return c.tel }

// spawnSampler starts the periodic resource-sampling daemon: per-tier
// occupancy, PFS usage, NIC occupancy and queue depth, cumulative network
// traffic, and the injector's retry/failover/crash counters.
func (c *Cluster) spawnSampler(smp *telemetry.Sampler) {
	tiers := make([]string, 0, len(c.Spec.Tiers))
	for _, ts := range c.Spec.Tiers {
		tiers = append(tiers, ts.Name)
	}
	cols := []string{"dram_used"}
	for _, t := range tiers {
		cols = append(cols, "used."+t)
	}
	pools := c.Pools() > 0
	if pools {
		// Pool columns exist only on disaggregated clusters, so uniform
		// clusters keep their exact pre-topology sampler output.
		cols = append(cols, "pool_used", "pool_queued")
	}
	cols = append(cols, "pfs_used", "nic_inuse", "nic_queued",
		"net_msgs", "net_bytes", "retries", "failovers", "crashes",
		"revives", "repairs")
	smp.SetColumns(cols...)
	vals := make([]int64, len(cols))
	c.Engine.SpawnDaemon("telemetry-sampler", func(p *vtime.Proc) {
		for {
			// Every cluster-wide figure here reads an incrementally
			// maintained aggregate: the tick is O(columns), independent of
			// the node count.
			k := 0
			vals[k] = c.agg.dramUsed
			k++
			for ti := range tiers {
				vals[k] = c.agg.tierUsed[ti]
				k++
			}
			if pools {
				vals[k] = c.agg.poolUsed
				k++
				vals[k] = int64(c.Fabric.PoolQueued())
				k++
			}
			vals[k] = c.PFS.Used()
			k++
			inUse, queued := c.Fabric.NICLoad()
			vals[k] = int64(inUse)
			k++
			vals[k] = int64(queued)
			k++
			msgs, bytes := c.Fabric.Stats()
			vals[k] = msgs
			k++
			vals[k] = bytes
			k++
			vals[k] = c.inj.CountPrefix("retry.")
			k++
			vals[k] = c.inj.Count("hermes.failover_recover")
			k++
			vals[k] = c.inj.Count("crash")
			k++
			vals[k] = c.inj.Count("revive")
			k++
			vals[k] = c.inj.CountPrefix("repair.")
			smp.Record(p.Now(), vals...)
			p.Sleep(smp.Period())
		}
	})
}

// New builds a cluster on a fresh engine. A spec with an enabled
// Topology appends its memory-pool nodes after the compute nodes: full
// fabric endpoints (NIC contention, chaos, crash/revive all apply)
// whose only storage is the remote_pool arena.
func New(spec Spec) *Cluster {
	if spec.Nodes <= 0 {
		panic("cluster: need at least one node")
	}
	if spec.PFSFanout <= 0 {
		spec.PFSFanout = 4
	}
	spec.Topology = spec.Topology.WithDefaults()
	if err := spec.Topology.Validate(); err != nil {
		panic("cluster: " + err.Error())
	}
	topo := spec.Topology
	c := &Cluster{
		Spec:     spec,
		Engine:   vtime.NewEngine(),
		Fabric:   simnet.New(spec.Nodes+topo.Pools, spec.Link),
		PFS:      device.New("pfs", spec.PFS),
		pfsSrv:   vtime.NewResource(spec.PFSFanout),
		pfsIDs:   blob.NewInterner(),
		computes: spec.Nodes,
	}
	// One stable injector for the cluster's lifetime: it starts with an
	// empty plan (no faults) and InstallFaults reconfigures it in place.
	// Handing it out here means every layer — fabric, devices, PFS, and
	// higher planes built later — captures the same handle, so fault
	// plans can be armed at any point, including after construction.
	c.inj = faults.NewInjector(faults.Plan{}, c.Engine.Now)
	c.Fabric.SetFaults(c.inj)
	c.agg.tierUsed = make([]int64, len(spec.Tiers))
	for i := 0; i < spec.Nodes; i++ {
		n := &Node{
			ID:      i,
			Cores:   vtime.NewResource(spec.CoresPer),
			Devices: make(map[string]*device.Device),
			dramCap: spec.DRAMPer,
			agg:     &c.agg,
		}
		for ti, ts := range spec.Tiers {
			d := device.New(fmt.Sprintf("node%d/%s", i, ts.Name), ts.Profile)
			used := &c.agg.tierUsed[ti]
			d.OnUsedChange(func(delta int64) { *used += delta })
			c.agg.storageCost += d.Cost()
			d.SetFaults(c.inj, i, ts.Name)
			n.Devices[ts.Name] = d
		}
		c.Nodes = append(c.Nodes, n)
	}
	for i := spec.Nodes; i < spec.Nodes+topo.Pools; i++ {
		n := &Node{
			ID:      i,
			Role:    topology.RoleMemoryPool,
			Cores:   vtime.NewResource(spec.CoresPer),
			Devices: make(map[string]*device.Device),
			agg:     &c.agg,
		}
		d := device.New(fmt.Sprintf("node%d/%s", i, topology.PoolTier), device.RemotePoolProfile(topo.PoolBytes))
		d.OnUsedChange(func(delta int64) {
			c.agg.poolUsed += delta
			if c.agg.poolUsed > c.agg.poolPeak {
				c.agg.poolPeak = c.agg.poolUsed
			}
		})
		c.agg.storageCost += d.Cost()
		d.SetFaults(c.inj, i, topology.PoolTier)
		n.Devices[topology.PoolTier] = d
		c.Nodes = append(c.Nodes, n)
	}
	if topo.Enabled() {
		c.Fabric.SetPoolLink(spec.Nodes, poolLink(spec.Link, topo))
	}
	c.PFS.SetFaults(c.inj, faults.PFSNode, "pfs")
	return c
}

// poolLink derives the effective pool-link profile: the fabric profile
// with the topology's latency/bandwidth overrides applied.
func poolLink(base simnet.LinkProfile, topo topology.Spec) simnet.LinkProfile {
	prof := base
	prof.Name = base.Name + "+pool"
	if topo.PoolLatency > 0 {
		prof.Latency = topo.PoolLatency
	}
	if topo.PoolBandwidth > 0 {
		prof.Bandwidth = topo.PoolBandwidth
	}
	return prof
}

// pfsID interns a PFS object name, assigning an ID on first use.
func (c *Cluster) pfsID(key string) blob.ID { return blob.Raw(c.pfsIDs.Intern(key)) }

// pfsLookup resolves a PFS object name without interning; the zero ID is
// returned for names never written.
func (c *Cluster) pfsLookup(key string) (blob.ID, bool) {
	vec, ok := c.pfsIDs.Lookup(key)
	return blob.Raw(vec), ok
}

// PFSWrite stores a blob range on the shared parallel filesystem from the
// given node, charging network transfer plus PFS service time. The string
// key is interned here; the stage backends are the only layer still
// addressing data by name.
func (c *Cluster) PFSWrite(p *vtime.Proc, node int, key string, off int64, data []byte) error {
	trc := c.tel.Tracer()
	sp := trc.Begin(telemetry.OpPFSWrite, node, telemetry.SpanID(p.TraceSpan()), p.Now())
	var prev uint32
	if sp != 0 {
		prev = p.SetTraceSpan(uint32(sp))
	}
	c.chargePFSNet(p, node, int64(len(data)))
	id := c.pfsID(key)
	c.pfsSrv.Acquire(p, 1)
	err := c.PFS.WriteAt(p, id, off, data)
	for attempt := 1; err != nil && faults.Transient(err) && c.inj.Allow(attempt); attempt++ {
		c.inj.Backoff(p, "retry.pfs_write", attempt)
		err = c.PFS.WriteAt(p, id, off, data)
	}
	c.pfsSrv.Release(1)
	if sp != 0 {
		p.SetTraceSpan(prev)
		s := trc.At(sp)
		// Vec stays 0: PFS keys live in the cluster's own interner, not
		// the vector namespace the trace resolver understands.
		s.Arg, s.Bytes, s.Err = off, int64(len(data)), err != nil
		trc.End(sp, p.Now())
	}
	return err
}

// PFSRead reads a blob range from the shared parallel filesystem into
// the given node. Injected transient faults are retried under the
// cluster's backoff policy; a persistent fault surfaces as an error with
// ok=true (the object exists but cannot be served).
func (c *Cluster) PFSRead(p *vtime.Proc, node int, key string, off, length int64) ([]byte, bool, error) {
	id, ok := c.pfsLookup(key)
	if !ok {
		return nil, false, nil
	}
	trc := c.tel.Tracer()
	sp := trc.Begin(telemetry.OpPFSRead, node, telemetry.SpanID(p.TraceSpan()), p.Now())
	var prev uint32
	if sp != 0 {
		prev = p.SetTraceSpan(uint32(sp))
	}
	c.pfsSrv.Acquire(p, 1)
	data, ok, err := c.PFS.ReadAt(p, id, off, length)
	for attempt := 1; err != nil && faults.Transient(err) && c.inj.Allow(attempt); attempt++ {
		c.inj.Backoff(p, "retry.pfs_read", attempt)
		data, ok, err = c.PFS.ReadAt(p, id, off, length)
	}
	c.pfsSrv.Release(1)
	if err == nil && ok {
		c.chargePFSNet(p, node, int64(len(data)))
	}
	if sp != 0 {
		p.SetTraceSpan(prev)
		s := trc.At(sp)
		s.Arg, s.Bytes, s.Err = off, int64(len(data)), err != nil
		trc.End(sp, p.Now())
	}
	if err != nil {
		return nil, ok, fmt.Errorf("cluster: pfs read %q: %w", key, err)
	}
	return data, ok, nil
}

// PFSSize returns the size of a PFS object, or -1 if absent.
func (c *Cluster) PFSSize(key string) int64 {
	id, ok := c.pfsLookup(key)
	if !ok {
		return -1
	}
	return c.PFS.BlobSize(id)
}

// PFSDelete removes a PFS object.
func (c *Cluster) PFSDelete(p *vtime.Proc, key string) {
	if id, ok := c.pfsLookup(key); ok {
		c.PFS.Delete(p, id)
	}
}

// PFSPeek returns a copy of a PFS object without charging virtual time
// (metadata snooping at open).
func (c *Cluster) PFSPeek(key string) ([]byte, bool) {
	id, ok := c.pfsLookup(key)
	if !ok {
		return nil, false
	}
	return c.PFS.Peek(id)
}

// PFSList returns the names of all PFS objects in sorted order.
func (c *Cluster) PFSList() []string {
	ids := c.PFS.List()
	keys := make([]string, 0, len(ids))
	for _, id := range ids {
		keys = append(keys, c.pfsIDs.Name(id.Vec))
	}
	sort.Strings(keys)
	return keys
}

// chargePFSNet charges the network hop between a compute node and the
// storage rack: wire time on the node's NIC plus one-way latency.
func (c *Cluster) chargePFSNet(p *vtime.Proc, node int, bytes int64) {
	prof := c.Fabric.Profile()
	p.Sleep(prof.Latency + prof.PerMsg + vtime.BytesAt(bytes, prof.Bandwidth))
}

// TotalDRAMPeak sums the per-node DRAM high-water marks (maintained
// incrementally; O(1)).
func (c *Cluster) TotalDRAMPeak() int64 { return c.agg.dramPeakSum }

// MaxDRAMPeak returns the largest per-node DRAM high-water mark
// (maintained incrementally; O(1)).
func (c *Cluster) MaxDRAMPeak() int64 { return c.agg.dramPeakMax }

// DRAMUsed returns the bytes of DRAM currently allocated across all
// nodes (maintained incrementally; O(1)).
func (c *Cluster) DRAMUsed() int64 { return c.agg.dramUsed }

// TierUsed returns the bytes currently stored on the named tier summed
// across all nodes (maintained incrementally; O(1)). Unknown tiers
// report 0.
func (c *Cluster) TierUsed(tier string) int64 {
	for ti, ts := range c.Spec.Tiers {
		if ts.Name == tier {
			return c.agg.tierUsed[ti]
		}
	}
	if tier == topology.PoolTier {
		return c.agg.poolUsed
	}
	return 0
}

// Computes returns the number of compute nodes: Nodes[:Computes()] run
// application procs, Nodes[Computes():] are memory-pool nodes.
func (c *Cluster) Computes() int { return c.computes }

// Pools returns the number of memory-pool nodes.
func (c *Cluster) Pools() int { return len(c.Nodes) - c.computes }

// PoolUsed returns the bytes currently stored across all memory-pool
// arenas (maintained incrementally; O(1)).
func (c *Cluster) PoolUsed() int64 { return c.agg.poolUsed }

// PoolPeak returns the high-water mark of PoolUsed.
func (c *Cluster) PoolPeak() int64 { return c.agg.poolPeak }

// StorageCost returns the total USD cost of all node-local tier capacity
// in use by the spec (the Fig. 7 cost metric). Capacity is fixed at
// construction, so the figure is computed once in New.
func (c *Cluster) StorageCost() float64 { return c.agg.storageCost }

// Monitor samples node resource usage over virtual time; it is the analog
// of the paper's pymonitor tool.
type Monitor struct {
	c       *Cluster
	Samples []Sample
}

// Sample is one time-series point of cluster resource usage.
type Sample struct {
	At        vtime.Duration
	DRAMUsed  int64 // summed over nodes
	DRAMPeak  int64
	TierUsed  map[string]int64
	NetMsgs   int64
	NetBytes  int64
	PFSStored int64
}

// NewMonitor creates a monitor and spawns its sampling process with the
// given period. Sampling stops when stop fires.
func NewMonitor(c *Cluster, period vtime.Duration, stop *vtime.Event) *Monitor {
	m := &Monitor{c: c}
	c.Engine.SpawnDaemon("pymonitor", func(p *vtime.Proc) {
		for !stop.Fired() {
			m.sample(p.Now())
			p.Sleep(period)
		}
	})
	return m
}

// WriteCSV emits the sampled time series in the paper pipeline's
// stats-CSV shape: one row per sample with virtual time, DRAM, per-tier
// usage, network and PFS counters.
func (m *Monitor) WriteCSV(w io.Writer) error {
	tiers := make(map[string]bool)
	for _, s := range m.Samples {
		for t := range s.TierUsed {
			tiers[t] = true
		}
	}
	names := make([]string, 0, len(tiers))
	for t := range tiers {
		names = append(names, t)
	}
	sort.Strings(names)
	cols := []string{"t_s", "dram_used", "dram_peak"}
	for _, t := range names {
		cols = append(cols, "tier_"+t)
	}
	cols = append(cols, "net_msgs", "net_bytes", "pfs_bytes")
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, s := range m.Samples {
		row := []string{
			fmt.Sprintf("%.6f", s.At.Seconds()),
			fmt.Sprintf("%d", s.DRAMUsed),
			fmt.Sprintf("%d", s.DRAMPeak),
		}
		for _, t := range names {
			row = append(row, fmt.Sprintf("%d", s.TierUsed[t]))
		}
		row = append(row,
			fmt.Sprintf("%d", s.NetMsgs),
			fmt.Sprintf("%d", s.NetBytes),
			fmt.Sprintf("%d", s.PFSStored))
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func (m *Monitor) sample(at vtime.Duration) {
	s := Sample{
		At:       at,
		DRAMUsed: m.c.agg.dramUsed,
		DRAMPeak: m.c.agg.dramPeakSum,
		TierUsed: make(map[string]int64, len(m.c.Spec.Tiers)),
	}
	for ti, ts := range m.c.Spec.Tiers {
		s.TierUsed[ts.Name] = m.c.agg.tierUsed[ti]
	}
	s.NetMsgs, s.NetBytes = m.c.Fabric.Stats()
	s.PFSStored = m.c.PFS.Used()
	m.Samples = append(m.Samples, s)
}
