package cluster

import (
	"errors"
	"strings"
	"testing"

	"megammap/internal/blob"
	"megammap/internal/device"
	"megammap/internal/vtime"
)

func smallSpec(nodes int) Spec {
	s := DefaultTestbed(nodes)
	s.DRAMPer = 1 * device.MB
	return s
}

func TestNewBuildsNodesAndTiers(t *testing.T) {
	c := New(DefaultTestbed(4))
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(c.Nodes))
	}
	for _, n := range c.Nodes {
		for _, tier := range []string{"nvme", "ssd", "hdd"} {
			if n.Devices[tier] == nil {
				t.Errorf("node %d missing tier %s", n.ID, tier)
			}
		}
	}
	if c.Fabric.Nodes() != 4 {
		t.Errorf("fabric has %d nodes, want 4", c.Fabric.Nodes())
	}
}

func TestAllocOOM(t *testing.T) {
	c := New(smallSpec(1))
	n := c.Nodes[0]
	if err := n.Alloc(900 * device.KB); err != nil {
		t.Fatal(err)
	}
	err := n.Alloc(200 * device.KB)
	var oom *ErrOOM
	if !errors.As(err, &oom) {
		t.Fatalf("expected ErrOOM, got %v", err)
	}
	if !n.OOM() {
		t.Error("node should be flagged OOM")
	}
	if oom.Free != 1*device.MB-900*device.KB {
		t.Errorf("free = %d", oom.Free)
	}
}

func TestAllocFreePeak(t *testing.T) {
	c := New(smallSpec(1))
	n := c.Nodes[0]
	if err := n.Alloc(500 * device.KB); err != nil {
		t.Fatal(err)
	}
	n.Free(300 * device.KB)
	if err := n.Alloc(100 * device.KB); err != nil {
		t.Fatal(err)
	}
	if n.DRAMUsed() != 300*device.KB {
		t.Errorf("used = %d, want 300KB", n.DRAMUsed())
	}
	if n.DRAMPeak() != 500*device.KB {
		t.Errorf("peak = %d, want 500KB", n.DRAMPeak())
	}
}

func TestFreeTooMuchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	c := New(smallSpec(1))
	c.Nodes[0].Free(1)
}

func TestComputeChargesCores(t *testing.T) {
	spec := smallSpec(1)
	spec.CoresPer = 2
	c := New(spec)
	n := c.Nodes[0]
	var finish []vtime.Duration
	for i := 0; i < 4; i++ {
		c.Engine.Spawn("w", func(p *vtime.Proc) {
			n.Compute(p, 10*vtime.Millisecond)
			finish = append(finish, p.Now())
		})
	}
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	// 4 jobs on 2 cores: 10,10,20,20 ms.
	if finish[3] != 20*vtime.Millisecond {
		t.Errorf("last job finished at %v, want 20ms", finish[3])
	}
}

func TestPFSRoundTrip(t *testing.T) {
	c := New(smallSpec(2))
	c.Engine.Spawn("io", func(p *vtime.Proc) {
		if err := c.PFSWrite(p, 0, "f", 0, []byte("persistent")); err != nil {
			t.Error(err)
		}
		data, ok, _ := c.PFSRead(p, 1, "f", 0, 10)
		if !ok || string(data) != "persistent" {
			t.Errorf("read = %q, %v", data, ok)
		}
		if c.PFSSize("f") != 10 {
			t.Errorf("size = %d", c.PFSSize("f"))
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestPFSFanoutContention(t *testing.T) {
	run := func(fanout int) vtime.Duration {
		spec := smallSpec(4)
		spec.PFSFanout = fanout
		c := New(spec)
		var wg vtime.WaitGroup
		wg.Add(4)
		for i := 0; i < 4; i++ {
			node := i
			c.Engine.Spawn("w", func(p *vtime.Proc) {
				key := string(rune('a' + node))
				if err := c.PFSWrite(p, node, key, 0, make([]byte, int(4*device.MB))); err != nil {
					t.Error(err)
				}
				wg.Done()
			})
		}
		var total vtime.Duration
		c.Engine.Spawn("waiter", func(p *vtime.Proc) { wg.Wait(p); total = p.Now() })
		if err := c.Engine.Run(); err != nil {
			t.Fatal(err)
		}
		return total
	}
	if narrow, wide := run(1), run(4); wide >= narrow {
		t.Errorf("PFS fanout 4 (%v) should beat fanout 1 (%v)", wide, narrow)
	}
}

func TestStorageCost(t *testing.T) {
	c := New(DefaultTestbed(2))
	if c.StorageCost() <= 0 {
		t.Error("storage cost should be positive")
	}
}

func TestClusterAggregates(t *testing.T) {
	c := New(smallSpec(2))
	if err := c.Nodes[0].Alloc(100); err != nil {
		t.Fatal(err)
	}
	if err := c.Nodes[1].Alloc(300); err != nil {
		t.Fatal(err)
	}
	c.Nodes[1].Free(300)
	if got := c.TotalDRAMPeak(); got != 400 {
		t.Errorf("total peak = %d, want 400", got)
	}
	if got := c.MaxDRAMPeak(); got != 300 {
		t.Errorf("max peak = %d, want 300", got)
	}
}

func TestMonitorSamples(t *testing.T) {
	c := New(smallSpec(1))
	stop := &vtime.Event{}
	m := NewMonitor(c, 10*vtime.Millisecond, stop)
	c.Engine.Spawn("work", func(p *vtime.Proc) {
		if err := c.Nodes[0].Alloc(512 * device.KB); err != nil {
			t.Error(err)
		}
		p.Sleep(35 * vtime.Millisecond)
		stop.Fire()
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if len(m.Samples) < 3 {
		t.Fatalf("got %d samples, want >= 3", len(m.Samples))
	}
	last := m.Samples[len(m.Samples)-1]
	if last.DRAMUsed != 512*device.KB {
		t.Errorf("last sample DRAM = %d, want 512KB", last.DRAMUsed)
	}
}

func TestDefaultTestbedMirrorsPaperRatios(t *testing.T) {
	s := DefaultTestbed(1)
	// 48GB DRAM : 128GB NVMe : 256GB SSD : 1TB HDD scaled uniformly.
	nv := s.Tiers[0].Profile.Capacity
	if nv != 128*device.MB {
		t.Errorf("nvme cap = %d, want 128MB-scaled", nv)
	}
	if s.DRAMPer*1024/48 != device.GB {
		t.Errorf("dram per node = %d, want 48MB (48GB/1024)", s.DRAMPer)
	}
}

func TestMonitorWriteCSV(t *testing.T) {
	c := New(smallSpec(1))
	stop := &vtime.Event{}
	m := NewMonitor(c, 5*vtime.Millisecond, stop)
	c.Engine.Spawn("work", func(p *vtime.Proc) {
		if err := c.Nodes[0].Alloc(100 * device.KB); err != nil {
			t.Error(err)
		}
		c.Engine.Spawn("io", func(p2 *vtime.Proc) {
			if err := c.Nodes[0].Devices["nvme"].Write(p2, blob.Raw(1), make([]byte, 4096)); err != nil {
				t.Error(err)
			}
		})
		p.Sleep(20 * vtime.Millisecond)
		stop.Fire()
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := m.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) < 3 {
		t.Fatalf("csv rows = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_s,dram_used,dram_peak,tier_") {
		t.Errorf("header = %q", lines[0])
	}
	last := lines[len(lines)-1]
	if !strings.Contains(last, "102400") {
		t.Errorf("final sample missing DRAM reading: %q", last)
	}
}

func TestErrOOMMessageAndAccessors(t *testing.T) {
	err := &ErrOOM{Node: 2, Need: 1024, Free: 10}
	for _, want := range []string{"node 2", "1024", "10"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("%q missing %q", err.Error(), want)
		}
	}
	c := New(smallSpec(1))
	n := c.Nodes[0]
	if n.DRAMCap() != int64(device.MB) {
		t.Errorf("DRAMCap = %d", n.DRAMCap())
	}
}

func TestPFSDelete(t *testing.T) {
	c := New(smallSpec(1))
	c.Engine.Spawn("p", func(p *vtime.Proc) {
		if err := c.PFSWrite(p, 0, "obj", 0, []byte("bytes")); err != nil {
			t.Fatal(err)
		}
		if c.PFSSize("obj") != 5 {
			t.Fatalf("PFSSize = %d", c.PFSSize("obj"))
		}
		c.PFSDelete(p, "obj")
		if c.PFSSize("obj") != -1 {
			t.Error("object survived PFSDelete")
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}
