package cluster

import (
	"math/rand"
	"testing"

	"megammap/internal/blob"
	"megammap/internal/device"
	"megammap/internal/simnet"
	"megammap/internal/vtime"
)

// TestAggregatesMatchWalks churns DRAM allocations and device writes,
// deletes, and purges across a cluster, then asserts every incrementally
// maintained aggregate equals the per-node walk it replaced.
func TestAggregatesMatchWalks(t *testing.T) {
	spec := Spec{
		Nodes:    12,
		CoresPer: 4,
		DRAMPer:  1 * device.MB,
		Tiers: []TierSpec{
			{Name: "nvme", Profile: device.NVMeProfile(2 * device.MB)},
			{Name: "ssd", Profile: device.SSDProfile(4 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(64 * device.MB),
	}
	c := New(spec)
	rng := rand.New(rand.NewSource(5))

	check := func(stage string) {
		t.Helper()
		var used, peakSum, peakMax int64
		tierUsed := map[string]int64{}
		for _, n := range c.Nodes {
			used += n.dramUsed
			peakSum += n.dramPeak
			if n.dramPeak > peakMax {
				peakMax = n.dramPeak
			}
			for name, d := range n.Devices {
				tierUsed[name] += d.Used()
			}
		}
		if got := c.DRAMUsed(); got != used {
			t.Errorf("%s: DRAMUsed = %d, walk = %d", stage, got, used)
		}
		if got := c.TotalDRAMPeak(); got != peakSum {
			t.Errorf("%s: TotalDRAMPeak = %d, walk = %d", stage, got, peakSum)
		}
		if got := c.MaxDRAMPeak(); got != peakMax {
			t.Errorf("%s: MaxDRAMPeak = %d, walk = %d", stage, got, peakMax)
		}
		for _, ts := range spec.Tiers {
			if got := c.TierUsed(ts.Name); got != tierUsed[ts.Name] {
				t.Errorf("%s: TierUsed(%s) = %d, walk = %d", stage, ts.Name, got, tierUsed[ts.Name])
			}
		}
		var cost float64
		for _, n := range c.Nodes {
			for _, d := range n.Devices {
				cost += d.Cost()
			}
		}
		if got := c.StorageCost(); got != cost {
			t.Errorf("%s: StorageCost = %v, walk = %v", stage, got, cost)
		}
	}
	check("fresh")

	// DRAM churn: allocate and free random amounts per node.
	held := make([]int64, spec.Nodes)
	for op := 0; op < 400; op++ {
		n := c.Nodes[rng.Intn(spec.Nodes)]
		if rng.Intn(3) < 2 {
			b := int64(rng.Intn(64 << 10))
			if n.Alloc(b) == nil {
				held[n.ID] += b
			}
		} else if held[n.ID] > 0 {
			b := held[n.ID] / 2
			n.Free(b)
			held[n.ID] -= b
		}
	}
	check("dram churn")

	// Device churn: writes of varying sizes, overwrites, deletes, and one
	// purge, run inside the engine so device time can be charged.
	c.Engine.Spawn("io", func(p *vtime.Proc) {
		for op := 0; op < 300; op++ {
			n := c.Nodes[rng.Intn(spec.Nodes)]
			d := n.Devices[spec.Tiers[rng.Intn(len(spec.Tiers))].Name]
			key := blob.Raw(uint32(rng.Intn(40)))
			switch rng.Intn(4) {
			case 0, 1:
				_ = d.Write(p, key, make([]byte, 1+rng.Intn(32<<10)))
			case 2:
				_ = d.WriteAt(p, key, int64(rng.Intn(8<<10)), make([]byte, 1+rng.Intn(8<<10)))
			default:
				d.Delete(p, key)
			}
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	check("device churn")

	c.Nodes[3].Devices["nvme"].Purge()
	check("after purge")
}
