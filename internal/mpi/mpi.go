// Package mpi provides a message-passing runtime over the simulated
// cluster, mirroring the MPI subset the paper's baseline applications use:
// point-to-point sends/receives with tag matching and tree-based
// collectives (barrier, broadcast, reduce, allreduce, gather, allgather,
// alltoall). Ranks run as vtime processes placed block-wise across nodes,
// and every message charges realistic fabric time, so collective costs
// scale O(log p) with contention — the property the Fig. 5 weak-scaling
// study exercises.
package mpi

import (
	"fmt"

	"megammap/internal/cluster"
	"megammap/internal/vtime"
)

// World is a set of ranks (an MPI_COMM_WORLD analog).
type World struct {
	c       *cluster.Cluster
	nprocs  int
	perNode int
	boxes   map[mkey][]*message
	recvers map[mkey][]*recvWaiter
	ranks   []*Rank
	wg      vtime.WaitGroup
	failed  error
}

type mkey struct {
	dst, src, tag int
}

type message struct {
	payload any
	bytes   int64
}

type recvWaiter struct {
	ev  vtime.Event
	msg *message
}

// NewWorld creates a world of nprocs ranks distributed block-wise over
// the cluster's compute nodes (rank r lives on node r/perNode).
// Memory-pool nodes run no application procs.
func NewWorld(c *cluster.Cluster, nprocs int) *World {
	if nprocs <= 0 {
		panic("mpi: nprocs must be positive")
	}
	perNode := (nprocs + c.Computes() - 1) / c.Computes()
	w := &World{
		c:       c,
		nprocs:  nprocs,
		perNode: perNode,
		boxes:   make(map[mkey][]*message),
		recvers: make(map[mkey][]*recvWaiter),
		ranks:   make([]*Rank, nprocs),
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.nprocs }

// NodeOf returns the node index hosting the given rank.
func (w *World) NodeOf(rank int) int { return rank / w.perNode }

// Cluster returns the underlying cluster.
func (w *World) Cluster() *cluster.Cluster { return w.c }

// Run spawns all ranks executing body and drives the engine to
// completion. It returns the first error reported by a rank (via
// Rank.Fail), an engine error, or nil.
func (w *World) Run(body func(r *Rank)) error {
	w.Launch(body)
	if err := w.c.Engine.Run(); err != nil {
		return err
	}
	return w.failed
}

// Launch spawns all ranks without running the engine; callers that share
// an engine with other processes use this and run the engine themselves.
func (w *World) Launch(body func(r *Rank)) {
	for i := 0; i < w.nprocs; i++ {
		i := i
		w.wg.Add(1)
		w.c.Engine.Spawn(fmt.Sprintf("rank%d", i), func(p *vtime.Proc) {
			r := &Rank{w: w, rank: i, p: p, node: w.c.Nodes[w.NodeOf(i)]}
			w.ranks[i] = r
			defer w.wg.Done()
			body(r)
		})
	}
}

// Wait blocks p until every rank has returned.
func (w *World) Wait(p *vtime.Proc) { w.wg.Wait(p) }

// Failed returns the first failure recorded by any rank.
func (w *World) Failed() error { return w.failed }

// Rank is one process of the world. Its methods must be called from the
// rank's own vtime process.
type Rank struct {
	w    *World
	rank int
	p    *vtime.Proc
	node *cluster.Node
	seq  int // collective sequence number (SPMD ordering)
}

// Rank returns the rank index.
func (r *Rank) Rank() int { return r.rank }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.nprocs }

// Proc returns the rank's simulation process.
func (r *Rank) Proc() *vtime.Proc { return r.p }

// Node returns the node hosting this rank.
func (r *Rank) Node() *cluster.Node { return r.node }

// World returns the rank's world.
func (r *Rank) World() *World { return r.w }

// Compute charges d of CPU time on the rank's node.
func (r *Rank) Compute(d vtime.Duration) { r.node.Compute(r.p, d) }

// Fail records err as the job's failure (first one wins).
func (r *Rank) Fail(err error) {
	if r.w.failed == nil && err != nil {
		r.w.failed = fmt.Errorf("rank %d: %w", r.rank, err)
	}
}

// Send delivers payload (bytes long on the wire) to rank dst with the
// given tag, blocking for the modeled transfer time.
func (r *Rank) Send(dst, tag int, payload any, bytes int64) {
	r.w.c.Fabric.Transfer(r.p, r.w.NodeOf(r.rank), r.w.NodeOf(dst), bytes)
	k := mkey{dst: dst, src: r.rank, tag: tag}
	if q := r.w.recvers[k]; len(q) > 0 {
		rw := q[0]
		r.w.recvers[k] = q[1:]
		rw.msg = &message{payload: payload, bytes: bytes}
		rw.ev.Fire()
		return
	}
	r.w.boxes[k] = append(r.w.boxes[k], &message{payload: payload, bytes: bytes})
}

// Recv blocks until a message from src with the given tag arrives and
// returns its payload and size.
func (r *Rank) Recv(src, tag int) (any, int64) {
	k := mkey{dst: r.rank, src: src, tag: tag}
	if q := r.w.boxes[k]; len(q) > 0 {
		m := q[0]
		r.w.boxes[k] = q[1:]
		return m.payload, m.bytes
	}
	rw := &recvWaiter{}
	r.w.recvers[k] = append(r.w.recvers[k], rw)
	rw.ev.Wait(r.p)
	return rw.msg.payload, rw.msg.bytes
}
