package mpi

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/vtime"
)

func testWorld(t *testing.T, nodes, nprocs int) *World {
	t.Helper()
	return NewWorld(cluster.New(cluster.DefaultTestbed(nodes)), nprocs)
}

func TestNodePlacementBlockwise(t *testing.T) {
	w := testWorld(t, 4, 8)
	wantNode := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for r, want := range wantNode {
		if got := w.NodeOf(r); got != want {
			t.Errorf("NodeOf(%d) = %d, want %d", r, got, want)
		}
	}
}

func TestSendRecvTagMatching(t *testing.T) {
	w := testWorld(t, 2, 2)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			r.Send(1, 7, "tag7", 4)
			r.Send(1, 5, "tag5", 4)
		} else {
			// Receive out of send order: tag matching must pick correctly.
			v5, _ := r.Recv(0, 5)
			v7, _ := r.Recv(0, 7)
			if v5 != "tag5" || v7 != "tag7" {
				t.Errorf("tag matching broken: got %v %v", v5, v7)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvFIFOPerTag(t *testing.T) {
	w := testWorld(t, 1, 2)
	err := w.Run(func(r *Rank) {
		if r.Rank() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 1, i, 8)
			}
		} else {
			for i := 0; i < 10; i++ {
				v, _ := r.Recv(0, 1)
				if v.(int) != i {
					t.Errorf("message %d arrived out of order: %v", i, v)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvBeforeSend(t *testing.T) {
	w := testWorld(t, 2, 2)
	var recvAt vtime.Duration
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			v, _ := r.Recv(0, 1)
			if v != "late" {
				t.Errorf("got %v", v)
			}
			recvAt = r.Proc().Now()
		} else {
			r.Proc().Sleep(10 * vtime.Millisecond)
			r.Send(1, 1, "late", 8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if recvAt < 10*vtime.Millisecond {
		t.Errorf("receiver returned at %v before the send", recvAt)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 7, 8} {
		w := testWorld(t, 2, p)
		var after []vtime.Duration
		err := w.Run(func(r *Rank) {
			r.Proc().Sleep(vtime.Duration(r.Rank()+1) * vtime.Millisecond)
			r.Barrier()
			after = append(after, r.Proc().Now())
		})
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		slowest := vtime.Duration(p) * vtime.Millisecond
		for _, at := range after {
			if at < slowest {
				t.Errorf("p=%d: a rank left the barrier at %v before the slowest entered (%v)", p, at, slowest)
			}
		}
	}
}

func TestBcastAllSizes(t *testing.T) {
	for _, p := range []int{1, 2, 3, 5, 8} {
		for root := 0; root < p; root += 2 {
			w := testWorld(t, 2, p)
			err := w.Run(func(r *Rank) {
				var payload any
				if r.Rank() == root {
					payload = fmt.Sprintf("from-%d", root)
				}
				got := r.Bcast(root, payload, 64)
				if got != fmt.Sprintf("from-%d", root) {
					t.Errorf("p=%d root=%d rank=%d: got %v", p, root, r.Rank(), got)
				}
			})
			if err != nil {
				t.Fatalf("p=%d root=%d: %v", p, root, err)
			}
		}
	}
}

func TestReduceSum(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 6, 8} {
		for _, root := range []int{0, p - 1} {
			w := testWorld(t, 2, p)
			err := w.Run(func(r *Rank) {
				res := r.Reduce(root, r.Rank()+1, 8, func(a, b any) any { return a.(int) + b.(int) })
				if r.Rank() == root {
					want := p * (p + 1) / 2
					if res.(int) != want {
						t.Errorf("p=%d root=%d: sum = %v, want %d", p, root, res, want)
					}
				}
			})
			if err != nil {
				t.Fatalf("p=%d: %v", p, err)
			}
		}
	}
}

func TestAllreduceEveryRankGetsResult(t *testing.T) {
	p := 6
	w := testWorld(t, 3, p)
	err := w.Run(func(r *Rank) {
		got := r.SumInt64(int64(r.Rank()))
		if got != 15 {
			t.Errorf("rank %d: allreduce = %d, want 15", r.Rank(), got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceFloat64s(t *testing.T) {
	p := 4
	w := testWorld(t, 2, p)
	err := w.Run(func(r *Rank) {
		in := []float64{float64(r.Rank()), 1, 2}
		got := r.SumFloat64s(in)
		want := []float64{6, 4, 8} // sum of ranks 0..3, 4 ones, 4 twos
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Errorf("rank %d: got %v, want %v", r.Rank(), got, want)
			}
		}
		if in[0] != float64(r.Rank()) {
			t.Error("input slice was clobbered")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGatherAndAllgather(t *testing.T) {
	p := 5
	w := testWorld(t, 2, p)
	err := w.Run(func(r *Rank) {
		got := r.Gather(2, r.Rank()*10, 8)
		if r.Rank() == 2 {
			for i := 0; i < p; i++ {
				if got[i].(int) != i*10 {
					t.Errorf("gather[%d] = %v, want %d", i, got[i], i*10)
				}
			}
		} else if got != nil {
			t.Errorf("rank %d: non-root gather should return nil", r.Rank())
		}
		all := r.Allgather(r.Rank()*100, 8)
		for i := 0; i < p; i++ {
			if all[i].(int) != i*100 {
				t.Errorf("rank %d: allgather[%d] = %v", r.Rank(), i, all[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	p := 4
	w := testWorld(t, 2, p)
	err := w.Run(func(r *Rank) {
		contribs := make([]any, p)
		for i := range contribs {
			contribs[i] = r.Rank()*10 + i
		}
		got := r.Alltoall(contribs, 8)
		for i := 0; i < p; i++ {
			if got[i].(int) != i*10+r.Rank() {
				t.Errorf("rank %d: alltoall[%d] = %v, want %d", r.Rank(), i, got[i], i*10+r.Rank())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectivesScaleLogarithmically(t *testing.T) {
	barrierTime := func(p int) vtime.Duration {
		w := testWorld(t, p, p) // one rank per node: all messages remote
		var at vtime.Duration
		err := w.Run(func(r *Rank) {
			r.Barrier()
			if r.Proc().Now() > at {
				at = r.Proc().Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return at
	}
	t4, t16 := barrierTime(4), barrierTime(16)
	// log2(16)/log2(4) = 2: the 16-node barrier should cost about twice,
	// certainly not 4x (linear).
	ratio := float64(t16) / float64(t4)
	if ratio > 3 {
		t.Errorf("barrier scaling ratio 16/4 nodes = %.2f, want ~2 (log scaling)", ratio)
	}
}

func TestFailPropagates(t *testing.T) {
	w := testWorld(t, 1, 2)
	sentinel := errors.New("boom")
	err := w.Run(func(r *Rank) {
		if r.Rank() == 1 {
			r.Fail(sentinel)
		}
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want wrapped sentinel", err)
	}
}

func TestMaxInt64(t *testing.T) {
	w := testWorld(t, 1, 5)
	err := w.Run(func(r *Rank) {
		if got := r.MaxInt64(int64(r.Rank() * 7)); got != 28 {
			t.Errorf("max = %d, want 28", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRankAndWorldAccessors(t *testing.T) {
	w := testWorld(t, 2, 4)
	if w.Size() != 4 {
		t.Fatalf("world size = %d", w.Size())
	}
	err := w.Run(func(r *Rank) {
		if r.Size() != 4 {
			t.Errorf("rank %d sees size %d", r.Rank(), r.Size())
		}
		if r.World() != w {
			t.Error("World accessor wrong")
		}
		if r.Node() != w.Cluster().Nodes[r.Rank()/2] {
			t.Errorf("rank %d on wrong node", r.Rank())
		}
		if r.Proc() == nil {
			t.Error("nil Proc")
		}
		before := r.Proc().Now()
		r.Compute(3 * vtime.Millisecond)
		if r.Proc().Now() <= before {
			t.Error("Compute charged no time")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLaunchWaitAndFailed(t *testing.T) {
	w := testWorld(t, 1, 3)
	boom := errors.New("boom")
	w.Launch(func(r *Rank) {
		if r.Rank() == 1 {
			r.Fail(boom)
		}
		r.Fail(nil) // nil must never clobber the recorded failure
	})
	done := false
	w.Cluster().Engine.Spawn("waiter", func(p *vtime.Proc) {
		w.Wait(p)
		done = true
	})
	if err := w.Cluster().Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("Wait never returned")
	}
	if !errors.Is(w.Failed(), boom) {
		t.Errorf("Failed = %v, want wrapped boom", w.Failed())
	}
}

func TestScalarAllreduceHelpers(t *testing.T) {
	w := testWorld(t, 2, 4)
	err := w.Run(func(r *Rank) {
		if got := r.SumFloat64(float64(r.Rank() + 1)); got != 10 {
			t.Errorf("SumFloat64 = %v, want 10", got)
		}
		max := r.AllreduceFloat64(float64(r.Rank()), math.Max)
		if max != 3 {
			t.Errorf("AllreduceFloat64 max = %v, want 3", max)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
