package mpi

// Tree-based collective operations. All ranks must call each collective in
// the same program order (SPMD); a per-rank sequence number isolates the
// tag space of successive collectives. Point-to-point sends are eager
// (buffered), so the exchange patterns below cannot deadlock.

const collTagBase = 1 << 30

func (r *Rank) nextCollTag() int {
	t := collTagBase + r.seq
	r.seq++
	return t
}

// Barrier blocks until every rank has entered it (dissemination
// algorithm: log2(p) rounds of pairwise signals).
func (r *Rank) Barrier() {
	tag := r.nextCollTag()
	p := r.w.nprocs
	for k := 1; k < p; k <<= 1 {
		dst := (r.rank + k) % p
		src := (r.rank - k + p) % p
		r.Send(dst, tag, nil, 8)
		r.Recv(src, tag)
	}
}

// Bcast distributes payload (bytes long) from root to every rank along a
// binomial tree and returns the received value (root returns its own).
func (r *Rank) Bcast(root int, payload any, bytes int64) any {
	tag := r.nextCollTag()
	p := r.w.nprocs
	vr := (r.rank - root + p) % p
	mask := 1
	for mask < p {
		if vr&mask != 0 {
			src := (r.rank - mask + p) % p
			payload, _ = r.Recv(src, tag)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if vr+mask < p {
			dst := (r.rank + mask) % p
			r.Send(dst, tag, payload, bytes)
		}
		mask >>= 1
	}
	return payload
}

// Reduce combines every rank's contribution with op along a binomial tree.
// The returned value is the full reduction on root and partial elsewhere.
func (r *Rank) Reduce(root int, contribution any, bytes int64, op func(a, b any) any) any {
	tag := r.nextCollTag()
	p := r.w.nprocs
	vr := (r.rank - root + p) % p
	acc := contribution
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := (vr - mask + root) % p
			r.Send(dst, tag, acc, bytes)
			break
		}
		srcVR := vr | mask
		if srcVR < p {
			v, _ := r.Recv((srcVR+root)%p, tag)
			acc = op(acc, v)
		}
	}
	return acc
}

// Allreduce reduces to rank 0 and broadcasts the result to all ranks.
func (r *Rank) Allreduce(contribution any, bytes int64, op func(a, b any) any) any {
	red := r.Reduce(0, contribution, bytes, op)
	return r.Bcast(0, red, bytes)
}

// Gather collects every rank's contribution at root along a binomial
// tree. It returns rank-indexed contributions on root and nil elsewhere.
func (r *Rank) Gather(root int, contribution any, bytes int64) []any {
	tag := r.nextCollTag()
	p := r.w.nprocs
	vr := (r.rank - root + p) % p
	acc := map[int]any{r.rank: contribution}
	accBytes := bytes
	for mask := 1; mask < p; mask <<= 1 {
		if vr&mask != 0 {
			dst := (vr - mask + root) % p
			r.Send(dst, tag, acc, accBytes)
			break
		}
		srcVR := vr | mask
		if srcVR < p {
			v, n := r.Recv((srcVR+root)%p, tag)
			for rank, c := range v.(map[int]any) {
				acc[rank] = c
			}
			accBytes += n
		}
	}
	if r.rank != root {
		return nil
	}
	out := make([]any, p)
	for rank, c := range acc {
		out[rank] = c
	}
	return out
}

// Allgather collects every rank's contribution on all ranks
// (gather-to-root followed by a tree broadcast, the MPICH pattern for
// large worlds).
func (r *Rank) Allgather(contribution any, bytes int64) []any {
	all := r.Gather(0, contribution, bytes)
	got := r.Bcast(0, all, bytes*int64(r.w.nprocs))
	return got.([]any)
}

// Alltoall sends contributions[i] to rank i and returns what every rank
// sent here, using p-1 rounds of pairwise shifts.
func (r *Rank) Alltoall(contributions []any, bytesEach int64) []any {
	if len(contributions) != r.w.nprocs {
		panic("mpi: alltoall needs one contribution per rank")
	}
	tag := r.nextCollTag()
	p := r.w.nprocs
	out := make([]any, p)
	out[r.rank] = contributions[r.rank]
	for k := 1; k < p; k++ {
		dst := (r.rank + k) % p
		src := (r.rank - k + p) % p
		r.Send(dst, tag, contributions[dst], bytesEach)
		v, _ := r.Recv(src, tag)
		out[src] = v
	}
	return out
}

// AllreduceFloat64s element-wise reduces a float64 slice across ranks with
// op and returns the combined slice on every rank. The input is not
// modified.
func (r *Rank) AllreduceFloat64s(vals []float64, op func(a, b float64) float64) []float64 {
	contrib := make([]float64, len(vals))
	copy(contrib, vals)
	res := r.Allreduce(contrib, int64(8*len(vals)), func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		out := make([]float64, len(av))
		for i := range av {
			out[i] = op(av[i], bv[i])
		}
		return out
	})
	return res.([]float64)
}

// SumFloat64s is an allreduce-sum over float64 slices.
func (r *Rank) SumFloat64s(vals []float64) []float64 {
	return r.AllreduceFloat64s(vals, func(a, b float64) float64 { return a + b })
}

// AllreduceFloat64 reduces one float64 across ranks.
func (r *Rank) AllreduceFloat64(v float64, op func(a, b float64) float64) float64 {
	res := r.Allreduce(v, 8, func(a, b any) any { return op(a.(float64), b.(float64)) })
	return res.(float64)
}

// SumFloat64 is an allreduce-sum of one float64.
func (r *Rank) SumFloat64(v float64) float64 {
	return r.AllreduceFloat64(v, func(a, b float64) float64 { return a + b })
}

// SumInt64 is an allreduce-sum of one int64.
func (r *Rank) SumInt64(v int64) int64 {
	res := r.Allreduce(v, 8, func(a, b any) any { return a.(int64) + b.(int64) })
	return res.(int64)
}

// MaxInt64 is an allreduce-max of one int64.
func (r *Rank) MaxInt64(v int64) int64 {
	res := r.Allreduce(v, 8, func(a, b any) any {
		if a.(int64) > b.(int64) {
			return a
		}
		return b
	})
	return res.(int64)
}
