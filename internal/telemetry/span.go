package telemetry

import "megammap/internal/vtime"

// SpanID names a recorded span. Zero means "no span": every Tracer method
// accepts it (and a nil Tracer returns it), so call sites never branch on
// whether tracing is enabled.
type SpanID uint32

// Op classifies a span. The enum spans every instrumented layer so that a
// fault's journey — pcache miss → scache lookup → device I/O → stager and
// backend fetch → retry/backoff — reads directly off the trace.
type Op uint8

// Span operations, grouped by subsystem.
const (
	OpNone Op = iota
	// core: page-cache and transaction plane.
	OpFault    // synchronous pcache miss (Vector.fault)
	OpPrefetch // asynchronous fill issued by the prefetcher
	OpCommit   // dirty-page commit issued by eviction or TxEnd
	OpTx       // a transaction (TxBegin..TxEnd)
	// core: task scheduler. One span per MemoryTask, from submit to done.
	OpTaskRead
	OpTaskWrite
	OpTaskScore
	OpTaskStage
	OpTaskDestroy
	OpTaskMove
	// hermes: shared-cache (DSMH) operations.
	OpScacheGet
	OpScachePut
	OpFailover // dead-primary recovery from backups
	// device: tier I/O.
	OpDeviceRead
	OpDeviceWrite
	// stager: cold-path staging between scache and backends.
	OpStageIn
	OpStageOut
	// cluster: PFS access (backend reads/writes land here).
	OpPFSRead
	OpPFSWrite
	// faults: one span per retry/backoff sleep; Arg is the attempt.
	OpRetry
	// recovery plane: anti-entropy re-replication of one under-replicated
	// blob, and one background checksum sweep over a vector's resident
	// pages.
	OpRepair
	OpScrub
	// control plane: one span per governor decision that moved a knob;
	// Arg is a bitmask of the knobs that changed.
	OpControl
	opCount
)

var opNames = [opCount]string{
	"none", "fault", "prefetch", "commit", "tx",
	"task.read", "task.write", "task.score", "task.stage", "task.destroy", "task.move",
	"scache.get", "scache.put", "failover",
	"device.read", "device.write",
	"stage.in", "stage.out",
	"pfs.read", "pfs.write",
	"retry",
	"repair", "scrub",
	"control",
}

var opCats = [opCount]string{
	"none", "core", "core", "core", "core",
	"task", "task", "task", "task", "task", "task",
	"hermes", "hermes", "hermes",
	"device", "device",
	"stager", "stager",
	"cluster", "cluster",
	"faults",
	"hermes", "core",
	"control",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "invalid"
}

// Cat returns the subsystem the op belongs to.
func (o Op) Cat() string {
	if int(o) < len(opCats) {
		return opCats[o]
	}
	return "invalid"
}

// IsTask reports whether o is a task-scheduler span.
func (o Op) IsTask() bool { return o >= OpTaskRead && o <= OpTaskMove }

// Span is one timed operation. Records are value types in a chunked arena;
// callers mutate op-specific fields through Tracer.At.
type Span struct {
	Start  vtime.Duration
	End    vtime.Duration
	Submit vtime.Duration // task spans: when the task entered the queue
	Bytes  int64          // payload moved, if any
	Arg    int64          // op-specific: page index, retry attempt, offset
	Parent SpanID         // causal parent, 0 for roots
	Vec    uint32         // interned vector/blob name id, 0 = none
	Node   int32          // executing node, -1 = cluster-global
	Origin int32          // task spans: submitting node
	Op     Op
	Err    bool
}

const (
	spanChunkBits = 12
	spanChunk     = 1 << spanChunkBits
)

// Tracer records spans into a chunked arena. IDs are arena positions, so
// Begin/At/End are O(1); allocation amortizes to one slab per 4096 spans,
// which keeps a traced fault path at the same allocs/op as an untraced
// one. All methods are nil-safe.
//
// Two full-arena policies exist. Keep-prefix (the default): once max
// spans are recorded further Begins are counted as dropped and return 0.
// Ring (Options.SpanRing): the arena wraps and overwrites the oldest
// span, so a long soak run keeps its newest max spans; evicted spans
// count as dropped and their IDs resolve to nil.
type Tracer struct {
	chunks  [][]Span
	n       int
	max     int
	ring    bool
	dropped int64
}

func newTracer(max int, ring bool) *Tracer { return &Tracer{max: max, ring: ring} }

// Begin records a new span starting (and, until End, also ending) at time
// at, and returns its ID. At the arena cap, Begin either counts the span
// as dropped and returns 0 (keep-prefix) or overwrites the oldest
// recorded span (ring).
func (t *Tracer) Begin(op Op, node int, parent SpanID, at vtime.Duration) SpanID {
	if t == nil {
		return 0
	}
	if t.n >= t.max {
		if !t.ring {
			t.dropped++
			return 0
		}
		slot := t.n % t.max
		t.chunks[slot>>spanChunkBits][slot&(spanChunk-1)] = Span{
			Op: op, Node: int32(node), Origin: int32(node), Parent: parent, Start: at, End: at,
		}
		t.n++
		t.dropped++ // the evicted span
		return SpanID(t.n)
	}
	ci := t.n >> spanChunkBits
	if ci == len(t.chunks) {
		t.chunks = append(t.chunks, make([]Span, 0, spanChunk))
	}
	t.chunks[ci] = append(t.chunks[ci], Span{
		Op: op, Node: int32(node), Origin: int32(node), Parent: parent, Start: at, End: at,
	})
	t.n++
	return SpanID(t.n)
}

// At returns the span record for id, or nil for id 0, an id evicted by
// the ring, or a nil tracer. The pointer stays valid until the ring laps
// it (forever in keep-prefix mode).
func (t *Tracer) At(id SpanID) *Span {
	if t == nil || id == 0 {
		return nil
	}
	i := int(id) - 1
	if i < t.n-t.max { // lapped by the ring
		return nil
	}
	if t.ring {
		i %= t.max
	}
	return &t.chunks[i>>spanChunkBits][i&(spanChunk-1)]
}

// End stamps the span's end time.
func (t *Tracer) End(id SpanID, at vtime.Duration) {
	if s := t.At(id); s != nil {
		s.End = at
	}
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many spans were discarded at the arena cap
// (keep-prefix) or evicted by the ring.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Each calls fn for every live span in recording order (which is causal
// order: a parent is always recorded before its children — though in
// ring mode a live span's parent may already be evicted).
func (t *Tracer) Each(fn func(id SpanID, s *Span)) {
	if t == nil {
		return
	}
	if t.ring && t.n > t.max {
		for id := SpanID(t.n - t.max + 1); id <= SpanID(t.n); id++ {
			fn(id, t.At(id))
		}
		return
	}
	id := SpanID(1)
	for _, c := range t.chunks {
		for i := range c {
			fn(id, &c[i])
			id++
		}
	}
}
