// Package telemetry is the vtime-native observability plane: a metrics
// registry of counters/gauges/histograms keyed by (node, subsystem, tier),
// causal span tracing of the page-fault path, and periodic resource
// sampling — all stamped with virtual time so that same-seed runs produce
// byte-identical output.
//
// The plane is installed cluster-wide (cluster.InstallTelemetry) and
// instrumented layers pick it up at construction, mirroring the fault
// injector. Every hot-path entry point is nil-safe: a nil *Telemetry,
// *Registry, or *Tracer (telemetry disabled) degrades every update to a
// single predictable branch, and enabled updates are allocation-free and
// O(1), preserving the 2-allocs/op fault path.
package telemetry

import "megammap/internal/vtime"

// Options configures the telemetry plane.
type Options struct {
	// Metrics enables the counter/gauge/histogram registry.
	Metrics bool
	// Spans enables causal span tracing.
	Spans bool
	// MaxSpans caps the span arena; once reached further Begins are
	// counted as dropped. Zero means DefaultMaxSpans.
	MaxSpans int
	// SpanRing makes the span arena a ring: at MaxSpans the tracer
	// overwrites the oldest span instead of dropping the newest, so long
	// soak/MTTR runs keep the tail of the trace rather than its head.
	SpanRing bool
	// SamplePeriod is the vtime tick of the resource sampler; zero
	// disables sampling.
	SamplePeriod vtime.Duration
}

// DefaultMaxSpans bounds the span arena when Options.MaxSpans is zero.
const DefaultMaxSpans = 1 << 20

func (o Options) withDefaults() Options {
	if o.MaxSpans <= 0 {
		o.MaxSpans = DefaultMaxSpans
	}
	return o
}

// Telemetry bundles the three sub-planes. A nil *Telemetry is a valid
// disabled plane: all accessors return nil and the nil sub-planes no-op.
type Telemetry struct {
	opts Options
	reg  *Registry
	trc  *Tracer
	smp  *Sampler
}

// New returns a telemetry plane with the sub-planes selected by opts.
func New(opts Options) *Telemetry {
	opts = opts.withDefaults()
	t := &Telemetry{opts: opts}
	if opts.Metrics {
		t.reg = NewRegistry()
	}
	if opts.Spans {
		t.trc = newTracer(opts.MaxSpans, opts.SpanRing)
	}
	if opts.SamplePeriod > 0 {
		t.smp = newSampler(opts.SamplePeriod)
	}
	return t
}

// Options returns the effective options (defaults applied).
func (t *Telemetry) Options() Options {
	if t == nil {
		return Options{}
	}
	return t.opts
}

// Registry returns the metrics registry, or nil when metrics are disabled.
func (t *Telemetry) Registry() *Registry {
	if t == nil {
		return nil
	}
	return t.reg
}

// Tracer returns the span tracer, or nil when spans are disabled.
func (t *Telemetry) Tracer() *Tracer {
	if t == nil {
		return nil
	}
	return t.trc
}

// Sampler returns the resource sampler, or nil when sampling is disabled.
func (t *Telemetry) Sampler() *Sampler {
	if t == nil {
		return nil
	}
	return t.smp
}
