package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"megammap/internal/vtime"
)

func TestNilPlaneIsSafe(t *testing.T) {
	var tel *Telemetry
	if tel.Registry() != nil || tel.Tracer() != nil || tel.Sampler() != nil {
		t.Fatal("nil plane handed out live sub-planes")
	}
	if tel.Options() != (Options{}) {
		t.Fatal("nil plane has non-zero options")
	}
	var r *Registry
	r.Counter(Key{Name: "x"}).Inc()
	r.Gauge(Key{Name: "x"}).Set(1)
	r.Histogram(Key{Name: "x"}).Observe(1)
	if r.Value(Key{Name: "x"}) != 0 {
		t.Fatal("nil registry recorded a value")
	}
	var trc *Tracer
	if id := trc.Begin(OpFault, 0, 0, 0); id != 0 {
		t.Fatalf("nil tracer began span %d", id)
	}
	trc.End(0, 0)
	if trc.At(0) != nil || trc.Len() != 0 || trc.Dropped() != 0 {
		t.Fatal("nil tracer is not inert")
	}
	var smp *Sampler
	smp.SetColumns("a")
	smp.Record(0, 1)
	if smp.Len() != 0 || smp.Period() != 0 {
		t.Fatal("nil sampler recorded")
	}
	if smp.Table() == nil {
		t.Fatal("nil sampler must still render an empty table")
	}
}

func TestOptionsSelectSubPlanes(t *testing.T) {
	tel := New(Options{Metrics: true})
	if tel.Registry() == nil || tel.Tracer() != nil || tel.Sampler() != nil {
		t.Fatal("Metrics-only options built the wrong sub-planes")
	}
	tel = New(Options{Spans: true, SamplePeriod: vtime.Millisecond})
	if tel.Registry() != nil || tel.Tracer() == nil || tel.Sampler() == nil {
		t.Fatal("Spans+Sampler options built the wrong sub-planes")
	}
	if tel.Options().MaxSpans != DefaultMaxSpans {
		t.Fatalf("MaxSpans default = %d, want %d", tel.Options().MaxSpans, DefaultMaxSpans)
	}
}

func TestRegistryCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	k := Key{Name: "core.faults", Node: 1, Subsystem: "core"}
	c := r.Counter(k)
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if got := r.Value(k); got != 5 {
		t.Errorf("registry value = %d, want 5", got)
	}
	// Re-registration returns the same series.
	r.Counter(k).Inc()
	if got := c.Value(); got != 6 {
		t.Errorf("re-registered counter diverged: %d", got)
	}
	g := r.Gauge(Key{Name: "tier.used", Node: 0, Tier: "nvme"})
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Errorf("gauge = %d, want 7", got)
	}
	h := r.Histogram(Key{Name: "fault_ns", Node: 0})
	for _, v := range []int64{1, 2, 3, 100, 1000, -5} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Errorf("histogram count = %d, want 6", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a key as a different kind did not panic")
		}
	}()
	r.Gauge(k)
}

func TestMetricHotPathDoesNotAllocate(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(Key{Name: "c"})
	g := r.Gauge(Key{Name: "g"})
	h := r.Histogram(Key{Name: "h"})
	var zc Counter
	var zg Gauge
	var zh Histogram
	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(1)
		h.Observe(12345)
		zc.Inc()
		zg.Set(1)
		zh.Observe(1)
	}); n != 0 {
		t.Errorf("metric updates allocate %v allocs/op, want 0", n)
	}
}

func TestTracerSpansAndChunkBoundary(t *testing.T) {
	trc := newTracer(3*spanChunk, false)
	// Fill past the first chunk boundary; every id must stay addressable
	// and keep its fields.
	n := spanChunk + 10
	for i := 1; i <= n; i++ {
		id := trc.Begin(OpFault, 1, SpanID(i-1), vtime.Duration(i))
		if id != SpanID(i) {
			t.Fatalf("Begin #%d returned id %d", i, id)
		}
		trc.At(id).Arg = int64(i)
		trc.End(id, vtime.Duration(i+100))
	}
	if trc.Len() != n {
		t.Fatalf("Len = %d, want %d", trc.Len(), n)
	}
	s := trc.At(SpanID(spanChunk + 1)) // first span of the second chunk
	if s == nil || s.Arg != int64(spanChunk+1) || s.Start != vtime.Duration(spanChunk+1) {
		t.Fatalf("span across chunk boundary corrupted: %+v", s)
	}
	seen := 0
	trc.Each(func(id SpanID, s *Span) {
		seen++
		if s.End != s.Start+100 {
			t.Fatalf("span %d: End %v, Start %v", id, s.End, s.Start)
		}
	})
	if seen != n {
		t.Fatalf("Each visited %d spans, want %d", seen, n)
	}
}

func TestTracerCapDropsAndCounts(t *testing.T) {
	trc := newTracer(4, false)
	for i := 0; i < 10; i++ {
		trc.Begin(OpRetry, -1, 0, 0)
	}
	if trc.Len() != 4 {
		t.Errorf("Len = %d, want cap 4", trc.Len())
	}
	if trc.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", trc.Dropped())
	}
	if id := trc.Begin(OpRetry, -1, 0, 0); id != 0 {
		t.Errorf("Begin past cap returned live id %d", id)
	}
}

func TestTracedBeginHoldsAllocBudget(t *testing.T) {
	trc := newTracer(DefaultMaxSpans, false)
	// One Begin+End pair amortizes to ~1/4096 allocations (the chunk
	// slab); anything near 1 alloc/op means the arena is broken.
	if n := testing.AllocsPerRun(10000, func() {
		id := trc.Begin(OpFault, 0, 0, 1)
		trc.End(id, 2)
	}); n > 0.01 {
		t.Errorf("Begin/End allocates %v allocs/op, want amortized ~0", n)
	}
}

func TestSamplerTable(t *testing.T) {
	smp := newSampler(vtime.Millisecond)
	smp.SetColumns("a", "b")
	smp.Record(vtime.Millisecond, 1, 2)
	smp.Record(2*vtime.Millisecond, 3, 4)
	if smp.Len() != 2 {
		t.Fatalf("Len = %d, want 2", smp.Len())
	}
	var buf bytes.Buffer
	if err := smp.Table().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "t_ms,a,b\n1,1,2\n2,3,4\n"
	if got != want {
		t.Errorf("sampler CSV:\n%q\nwant\n%q", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Error("short Record row did not panic")
		}
	}()
	smp.Record(3*vtime.Millisecond, 9)
}

func TestWriteChromeTraceIsValidJSON(t *testing.T) {
	tel := New(Options{Spans: true, SamplePeriod: vtime.Millisecond})
	trc := tel.Tracer()
	root := trc.Begin(OpFault, 0, 0, 10)
	trc.At(root).Vec = 7
	child := trc.Begin(OpScacheGet, 0, root, 20)
	trc.End(child, 30)
	trc.End(root, 40)
	tel.Sampler().SetColumns("x")
	tel.Sampler().Record(vtime.Millisecond, 42)
	var buf bytes.Buffer
	if err := tel.WriteChromeTrace(&buf, func(vec uint32) string { return "vec7" }); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid Chrome trace JSON: %v", err)
	}
	var haveFault, haveChild, haveMeta, haveCounter bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "X" && ev.Name == "fault":
			haveFault = true
			if ev.Args["vec"] != "vec7" {
				t.Errorf("fault span vec arg = %v, want resolved name", ev.Args["vec"])
			}
		case ev.Ph == "X" && ev.Name == "scache.get":
			haveChild = true
			if ev.Args["parent"] != float64(root) {
				t.Errorf("child parent arg = %v, want %d", ev.Args["parent"], root)
			}
		case ev.Ph == "M":
			haveMeta = true
		case ev.Ph == "C" && ev.Name == "x":
			haveCounter = true
		}
	}
	if !haveFault || !haveChild || !haveMeta || !haveCounter {
		t.Errorf("trace missing event classes: fault=%v child=%v meta=%v counter=%v",
			haveFault, haveChild, haveMeta, haveCounter)
	}
	// Determinism: a second export of the same plane is byte-identical.
	var buf2 bytes.Buffer
	if err := tel.WriteChromeTrace(&buf2, func(vec uint32) string { return "vec7" }); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two exports of the same plane differ")
	}
}

func TestMetricsTables(t *testing.T) {
	tel := New(Options{Metrics: true})
	tel.Registry().Counter(Key{Name: "b.count", Node: 1}).Add(2)
	tel.Registry().Counter(Key{Name: "a.count", Node: 0, Tier: "nvme"}).Inc()
	tel.Registry().Histogram(Key{Name: "lat", Node: 0}).Observe(100)
	var buf bytes.Buffer
	for _, tb := range tel.Tables() {
		if err := tb.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "a.count") || !strings.Contains(out, "b.count") || !strings.Contains(out, "lat") {
		t.Errorf("tables missing series:\n%s", out)
	}
	// Sorted-key order: a.count must render before b.count.
	if strings.Index(out, "a.count") > strings.Index(out, "b.count") {
		t.Errorf("metric rows not in sorted key order:\n%s", out)
	}
}

// TestQuantileAcross: merging same-name histogram series across nodes
// must equal one histogram fed every sample, regardless of how the
// observations were split — bucket sums are order-independent.
func TestQuantileAcross(t *testing.T) {
	split, merged := NewRegistry(), NewRegistry()
	one := merged.Histogram(Key{Name: "lat", Node: -1})
	for node := 0; node < 4; node++ {
		h := split.Histogram(Key{Name: "lat", Node: node})
		for i := 0; i < 50; i++ {
			v := int64((node*50 + i) * 1000)
			h.Observe(v)
			one.Observe(v)
		}
	}
	// A different metric and a non-histogram must not leak into the merge.
	split.Histogram(Key{Name: "other", Node: 0}).Observe(1 << 40)
	split.Gauge(Key{Name: "lat", Node: 99}).Set(1 << 40)
	for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
		if got, want := split.QuantileAcross("lat", q), one.Quantile(q); got != want {
			t.Errorf("QuantileAcross(lat, %v) = %d, merged histogram says %d", q, got, want)
		}
	}
	if split.QuantileAcross("missing", 0.5) != 0 {
		t.Error("QuantileAcross on an unknown name should be 0")
	}
	var nilReg *Registry
	if nilReg.QuantileAcross("lat", 0.5) != 0 {
		t.Error("nil registry QuantileAcross should be 0")
	}
}
