package telemetry

import (
	"encoding/json"
	"io"
	"strconv"

	"megammap/internal/stats"
	"megammap/internal/vtime"
)

// This file renders the plane's state: CSV/JSON summaries through the
// stats tables, and Chrome trace-event JSON (chrome://tracing / Perfetto)
// for the span arena. All output is deterministic — sorted keys, arena
// order, virtual timestamps — so same-seed runs export identical bytes.

// MetricsTable renders every counter and gauge as one row, sorted by key.
func (t *Telemetry) MetricsTable() *stats.Table {
	tb := stats.NewTable("telemetry_metrics", "metric", "kind", "node", "subsystem", "tier", "value")
	t.Registry().each(func(s *series) {
		if s.kind == kindHistogram {
			return
		}
		kind := "counter"
		if s.kind == kindGauge {
			kind = "gauge"
		}
		tb.Add(s.key.Name, kind, s.key.Node, s.key.Subsystem, s.key.Tier, s.val)
	})
	return tb
}

// HistogramsTable renders every histogram as one summary row, sorted by
// key. Quantiles interpolate within power-of-two buckets (see
// Histogram.Quantile); times are in nanoseconds.
func (t *Telemetry) HistogramsTable() *stats.Table {
	tb := stats.NewTable("telemetry_hist",
		"metric", "node", "subsystem", "tier", "count", "mean_ns", "p50_ns", "p99_ns", "p999_ns", "min_ns", "max_ns")
	t.Registry().each(func(s *series) {
		if s.kind != kindHistogram {
			return
		}
		var mean float64
		mn, mx := int64(0), int64(0)
		if s.count > 0 {
			mean = float64(s.sum) / float64(s.count)
			mn, mx = s.min, s.max
		}
		tb.Add(s.key.Name, s.key.Node, s.key.Subsystem, s.key.Tier,
			s.count, mean, s.quantile(0.50), s.quantile(0.99), s.quantile(0.999), mn, mx)
	})
	return tb
}

// Tables returns every non-empty summary table (metrics, histograms,
// samples), for callers that dump the whole plane.
func (t *Telemetry) Tables() []*stats.Table {
	var out []*stats.Table
	if mt := t.MetricsTable(); mt.Len() > 0 {
		out = append(out, mt)
	}
	if ht := t.HistogramsTable(); ht.Len() > 0 {
		out = append(out, ht)
	}
	if t.Sampler().Len() > 0 {
		out = append(out, t.Sampler().Table())
	}
	return out
}

// jsonMetric is the WriteJSON shape of one metric series.
type jsonMetric struct {
	Name      string  `json:"name"`
	Kind      string  `json:"kind"`
	Node      int     `json:"node"`
	Subsystem string  `json:"subsystem,omitempty"`
	Tier      string  `json:"tier,omitempty"`
	Value     int64   `json:"value,omitempty"`
	Count     int64   `json:"count,omitempty"`
	MeanNs    float64 `json:"mean_ns,omitempty"`
	P50Ns     int64   `json:"p50_ns,omitempty"`
	P99Ns     int64   `json:"p99_ns,omitempty"`
	P999Ns    int64   `json:"p999_ns,omitempty"`
}

// WriteJSON emits a machine-readable summary of the whole plane: metric
// values, histogram digests, and span/sample counts.
func (t *Telemetry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []jsonMetric `json:"metrics"`
		Spans   int          `json:"spans"`
		Dropped int64        `json:"spans_dropped"`
		Samples int          `json:"samples"`
	}{Metrics: []jsonMetric{}}
	t.Registry().each(func(s *series) {
		m := jsonMetric{Name: s.key.Name, Node: s.key.Node, Subsystem: s.key.Subsystem, Tier: s.key.Tier}
		switch s.kind {
		case kindCounter:
			m.Kind, m.Value = "counter", s.val
		case kindGauge:
			m.Kind, m.Value = "gauge", s.val
		case kindHistogram:
			m.Kind, m.Count = "histogram", s.count
			if s.count > 0 {
				m.MeanNs = float64(s.sum) / float64(s.count)
			}
			m.P50Ns, m.P99Ns, m.P999Ns = s.quantile(0.50), s.quantile(0.99), s.quantile(0.999)
		}
		doc.Metrics = append(doc.Metrics, m)
	})
	doc.Spans = t.Tracer().Len()
	doc.Dropped = t.Tracer().Dropped()
	doc.Samples = t.Sampler().Len()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// chromeEvent is one entry of the Chrome trace-event JSON array.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int32          `json:"pid"`
	Tid  int32          `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

func usec(d vtime.Duration) float64 { return float64(d) / 1e3 }

// WriteChromeTrace emits the span arena (plus sampler counter tracks) as
// Chrome trace-event JSON. pid is the node; tid is a lane assigned per
// causal tree so concurrent faults render side by side while a fault's
// children nest under it. vecName, if non-nil, resolves interned vector
// ids to display names for the event args.
func (t *Telemetry) WriteChromeTrace(w io.Writer, vecName func(vec uint32) string) error {
	trc := t.Tracer()
	n := trc.Len()
	// Resolve each span's root and each tree's extent, in one arena pass
	// (parents always precede children).
	rootOf := make([]SpanID, n+1)
	treeEnd := make(map[SpanID]vtime.Duration)
	seenNode := make(map[int32]bool)
	trc.Each(func(id SpanID, s *Span) {
		root := id
		if s.Parent != 0 && s.Parent < id {
			// A ring-evicted parent resolves to no root; orphaned spans
			// become roots of their surviving subtree.
			if r := rootOf[s.Parent]; r != 0 {
				root = r
			}
		}
		rootOf[id] = root
		if s.End > treeEnd[root] {
			treeEnd[root] = s.End
		}
		seenNode[s.Node] = true
	})
	// Greedy interval coloring over root trees: reuse the lowest lane
	// that is free by the tree's start. Deterministic: roots are visited
	// in id (= start) order.
	laneOf := make(map[SpanID]int32)
	var laneEnd []vtime.Duration
	trc.Each(func(id SpanID, s *Span) {
		if rootOf[id] != id {
			return
		}
		lane := -1
		for i, end := range laneEnd {
			if end <= s.Start {
				lane = i
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = treeEnd[id]
		laneOf[id] = int32(lane)
	})

	events := make([]chromeEvent, 0, n+len(seenNode))
	for node := range seenNode {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: node,
			Args: map[string]any{"name": "node" + strconv.Itoa(int(node))},
		})
	}
	// Metadata order must not depend on map iteration.
	sortEventsByPid(events)

	trc.Each(func(id SpanID, s *Span) {
		dur := usec(s.End - s.Start)
		args := map[string]any{"span": id}
		if s.Parent != 0 {
			args["parent"] = s.Parent
		}
		if s.Vec != 0 {
			if vecName != nil {
				args["vec"] = vecName(s.Vec)
			} else {
				args["vec"] = s.Vec
			}
		}
		if s.Arg != 0 {
			args["arg"] = s.Arg
		}
		if s.Bytes != 0 {
			args["bytes"] = s.Bytes
		}
		if s.Op.IsTask() {
			args["submit_us"] = usec(s.Submit)
			args["origin"] = s.Origin
		}
		if s.Err {
			args["err"] = true
		}
		events = append(events, chromeEvent{
			Name: s.Op.String(), Cat: s.Op.Cat(), Ph: "X",
			Ts: usec(s.Start), Dur: &dur,
			Pid: s.Node, Tid: laneOf[rootOf[id]],
			Args: args,
		})
	})

	// Sampler series render as Chrome counter tracks on a synthetic pid.
	if smp := t.Sampler(); smp.Len() > 0 {
		const samplerPid = -1
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: samplerPid,
			Args: map[string]any{"name": "sampler"},
		})
		for i, row := range smp.rows {
			ts := usec(smp.at[i])
			for j, col := range smp.cols {
				events = append(events, chromeEvent{
					Name: col, Ph: "C", Ts: ts, Pid: samplerPid,
					Args: map[string]any{"value": row[j]},
				})
			}
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

func sortEventsByPid(events []chromeEvent) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && events[j].Pid < events[j-1].Pid; j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}
