package telemetry

import (
	"megammap/internal/stats"
	"megammap/internal/vtime"
)

// Sampler accumulates periodic resource samples (tier occupancy, NIC queue
// depth, fault-retry counts, ...). The owner of the plane — the cluster —
// runs a vtime-ticker daemon that calls Record every Period; the sampler
// itself is just deterministic column-oriented storage.
type Sampler struct {
	period vtime.Duration
	cols   []string
	at     []vtime.Duration
	rows   [][]int64
}

func newSampler(period vtime.Duration) *Sampler { return &Sampler{period: period} }

// Period returns the sampling tick.
func (s *Sampler) Period() vtime.Duration {
	if s == nil {
		return 0
	}
	return s.period
}

// SetColumns fixes the sample schema. It must be called once, before the
// first Record.
func (s *Sampler) SetColumns(cols ...string) {
	if s == nil {
		return
	}
	if len(s.cols) != 0 {
		panic("telemetry: sampler columns already set")
	}
	s.cols = append([]string(nil), cols...)
}

// Record appends one sample row taken at virtual time at. vals is copied
// and must match the schema length.
func (s *Sampler) Record(at vtime.Duration, vals ...int64) {
	if s == nil {
		return
	}
	if len(vals) != len(s.cols) {
		panic("telemetry: sample width does not match schema")
	}
	s.at = append(s.at, at)
	s.rows = append(s.rows, append([]int64(nil), vals...))
}

// Len returns the number of recorded samples.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rows)
}

// Columns returns the sample schema.
func (s *Sampler) Columns() []string {
	if s == nil {
		return nil
	}
	return s.cols
}

// Table renders the samples as a stats table with a leading t_ms column.
func (s *Sampler) Table() *stats.Table {
	cols := []string{"t_ms"}
	if s != nil {
		cols = append(cols, s.cols...)
	}
	tb := stats.NewTable("telemetry_samples", cols...)
	if s == nil {
		return tb
	}
	vals := make([]any, len(cols))
	for i, row := range s.rows {
		vals[0] = s.at[i].Milliseconds()
		for j, v := range row {
			vals[j+1] = v
		}
		tb.Add(vals...)
	}
	return tb
}
