package telemetry

import "testing"

// TestQuantileEmpty: an unobserved histogram (and the zero-value handle)
// reports 0 for every quantile.
func TestQuantileEmpty(t *testing.T) {
	var zero Histogram
	if got := zero.Quantile(0.5); got != 0 {
		t.Fatalf("zero handle Quantile(0.5) = %d, want 0", got)
	}
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile(0.99) = %d, want 0", got)
	}
}

// TestQuantilePointMass: every quantile of a single repeated value is
// that value exactly — min/max clamping pins the interpolation.
func TestQuantilePointMass(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	for i := 0; i < 100; i++ {
		h.Observe(1000)
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 0.999, 1} {
		if got := h.Quantile(q); got != 1000 {
			t.Fatalf("Quantile(%v) = %d, want 1000", q, got)
		}
	}
}

// TestQuantileZeroes: observations of zero land in bucket 0 and report 0.
func TestQuantileZeroes(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	for i := 0; i < 10; i++ {
		h.Observe(0)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile(0.5) = %d, want 0", got)
	}
}

// TestQuantileUniform: a uniform 1..1000 distribution should report a
// median near 500 — within-bucket interpolation, not the 511 bucket
// upper bound — and extremes clamped to the observed min/max.
func TestQuantileUniform(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	p50 := h.Quantile(0.5)
	if p50 < 450 || p50 > 550 {
		t.Fatalf("uniform median = %d, want within [450, 550]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 900 || p99 > 1000 {
		t.Fatalf("uniform p99 = %d, want within [900, 1000]", p99)
	}
	if got := h.Quantile(1); got != 1000 {
		t.Fatalf("Quantile(1) = %d, want max 1000", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %d, want min 1", got)
	}
	// Out-of-range q clamps rather than panicking or extrapolating.
	if got := h.Quantile(-1); got != 1 {
		t.Fatalf("Quantile(-1) = %d, want 1", got)
	}
	if got := h.Quantile(2); got != 1000 {
		t.Fatalf("Quantile(2) = %d, want 1000", got)
	}
}

// TestQuantileMonotonic: quantiles never decrease as q grows.
func TestQuantileMonotonic(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	for v := int64(1); v <= 5000; v += 7 {
		h.Observe(v * v % 4096)
	}
	prev := int64(-1)
	for q := 0.0; q <= 1.0; q += 0.01 {
		got := h.Quantile(q)
		if got < prev {
			t.Fatalf("Quantile(%v) = %d < previous %d", q, got, prev)
		}
		prev = got
	}
}

// TestQuantileBimodal: with 90% of mass at a low value and 10% at a high
// one, p50 sits on the low mode and p99 on the high mode.
func TestQuantileBimodal(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(Key{Name: "lat"})
	for i := 0; i < 900; i++ {
		h.Observe(100)
	}
	for i := 0; i < 100; i++ {
		h.Observe(100000)
	}
	if got := h.Quantile(0.5); got != 100 {
		t.Fatalf("bimodal p50 = %d, want 100", got)
	}
	p99 := h.Quantile(0.99)
	if p99 < 65536 || p99 > 100000 {
		t.Fatalf("bimodal p99 = %d, want in the high mode's bucket [65536, 100000]", p99)
	}
}
