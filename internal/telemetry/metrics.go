package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// Key identifies a metric series: a name plus the (node, subsystem, tier)
// coordinates. Node < 0 means cluster-global; empty Subsystem/Tier mean
// not applicable.
type Key struct {
	Name      string
	Node      int
	Subsystem string
	Tier      string
}

func (k Key) less(o Key) bool {
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	if k.Node != o.Node {
		return k.Node < o.Node
	}
	if k.Subsystem != o.Subsystem {
		return k.Subsystem < o.Subsystem
	}
	return k.Tier < o.Tier
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. power-of-two buckets [2^(i-1), 2^i).
// A non-negative int64 always lands in 0..63.
const histBuckets = 64

// series is the registered storage behind a metric handle. Handles update
// it with a single pointer-chase add: no map lookup, no allocation.
type series struct {
	key     Key
	kind    metricKind
	val     int64
	count   int64
	sum     int64
	min     int64
	max     int64
	buckets *[histBuckets]int64
}

// Registry holds metric series. Registration (Counter/Gauge/Histogram) is
// map-based and may allocate; it is meant for construction time. The
// returned handles are the hot-path interface. A nil *Registry hands out
// zero-value handles whose updates are no-ops.
type Registry struct {
	byKey map[Key]*series
	all   []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[Key]*series)}
}

func (r *Registry) lookup(k Key, kind metricKind) *series {
	if r == nil {
		return nil
	}
	if s, ok := r.byKey[k]; ok {
		if s.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind", k.Name))
		}
		return s
	}
	s := &series{key: k, kind: kind, min: math.MaxInt64, max: math.MinInt64}
	if kind == kindHistogram {
		s.buckets = new([histBuckets]int64)
	}
	r.byKey[k] = s
	r.all = append(r.all, s)
	return s
}

// Counter registers (or finds) a monotonically increasing series.
func (r *Registry) Counter(k Key) Counter { return Counter{s: r.lookup(k, kindCounter)} }

// Gauge registers (or finds) a point-in-time value series.
func (r *Registry) Gauge(k Key) Gauge { return Gauge{s: r.lookup(k, kindGauge)} }

// Histogram registers (or finds) a fixed-bucket distribution series.
func (r *Registry) Histogram(k Key) Histogram { return Histogram{s: r.lookup(k, kindHistogram)} }

// Value returns the current value of the counter or gauge at k, or 0.
func (r *Registry) Value(k Key) int64 {
	if r == nil {
		return 0
	}
	if s, ok := r.byKey[k]; ok {
		return s.val
	}
	return 0
}

// each calls fn for every series in deterministic (sorted-key) order.
func (r *Registry) each(fn func(s *series)) {
	if r == nil {
		return
	}
	sorted := make([]*series, len(r.all))
	copy(sorted, r.all)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key.less(sorted[j].key) })
	for _, s := range sorted {
		fn(s)
	}
}

// Counter is a monotonically increasing metric handle. The zero value is a
// valid no-op handle, so disabled telemetry costs one branch per update.
type Counter struct{ s *series }

// Add increments the counter by n.
func (c Counter) Add(n int64) {
	if c.s != nil {
		c.s.val += n
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() {
	if c.s != nil {
		c.s.val++
	}
}

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.s == nil {
		return 0
	}
	return c.s.val
}

// Gauge is a point-in-time metric handle. The zero value no-ops.
type Gauge struct{ s *series }

// Set stores v as the current value.
func (g Gauge) Set(v int64) {
	if g.s != nil {
		g.s.val = v
	}
}

// Add adjusts the current value by d.
func (g Gauge) Add(d int64) {
	if g.s != nil {
		g.s.val += d
	}
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.s == nil {
		return 0
	}
	return g.s.val
}

// Histogram is a fixed-bucket distribution handle. Observe is O(1) and
// allocation-free: the bucket index is the bit length of the observation.
// The zero value no-ops.
type Histogram struct{ s *series }

// Observe records one sample (negative samples clamp to zero).
func (h Histogram) Observe(v int64) {
	s := h.s
	if s == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	s.count++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	s.buckets[bits.Len64(uint64(v))]++
}

// Count returns the number of observations.
func (h Histogram) Count() int64 {
	if h.s == nil {
		return 0
	}
	return h.s.count
}

// Quantile returns the q-quantile (q in [0, 1]) of the observed samples:
// the rank's power-of-two bucket, linearly interpolated by the rank's
// position inside it and clamped to the observed [min, max]. The result
// is deterministic — fixed buckets, fixed arithmetic — so same-seed runs
// report identical percentiles. An empty or zero-value histogram is 0.
func (h Histogram) Quantile(q float64) int64 {
	if h.s == nil {
		return 0
	}
	return h.s.quantile(q)
}

// QuantileAcross merges every histogram series with the given name —
// regardless of node, subsystem, or tier coordinates — and returns the
// q-quantile of the union. Bucket sums are order-independent, so the
// result is deterministic. Returns 0 when no samples match.
func (r *Registry) QuantileAcross(name string, q float64) int64 {
	if r == nil {
		return 0
	}
	m := series{kind: kindHistogram, min: math.MaxInt64, max: math.MinInt64,
		buckets: new([histBuckets]int64)}
	for _, s := range r.all {
		if s.kind != kindHistogram || s.key.Name != name || s.count == 0 {
			continue
		}
		m.count += s.count
		m.sum += s.sum
		if s.min < m.min {
			m.min = s.min
		}
		if s.max > m.max {
			m.max = s.max
		}
		for i, n := range s.buckets {
			m.buckets[i] += n
		}
	}
	return m.quantile(q)
}

// quantile implements Histogram.Quantile on the raw series.
func (s *series) quantile(q float64) int64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.count) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, n := range s.buckets {
		if n == 0 {
			continue
		}
		cum += n
		if cum < rank {
			continue
		}
		if i == 0 {
			return 0 // bucket 0 holds only the value 0
		}
		lo := int64(1) << uint(i-1)
		hi := int64(math.MaxInt64)
		if i < 63 {
			hi = int64(1)<<uint(i) - 1
		}
		// Interpolate by the rank's position among this bucket's samples.
		frac := float64(rank-(cum-n)) / float64(n)
		v := lo + int64(frac*float64(hi-lo)+0.5)
		if v < s.min {
			v = s.min
		}
		if v > s.max {
			v = s.max
		}
		return v
	}
	return s.max
}
