package kvstore

import (
	"fmt"
	"math/rand"
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/device"
	"megammap/internal/simnet"
	"megammap/internal/vtime"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  32 * device.MB,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(2 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme"}
	cfg.DefaultPageSize = 12 << 10 // 512 slots per page
	return cfg
}

func TestSlotCodecRoundTrip(t *testing.T) {
	var c SlotCodec
	buf := make([]byte, c.Size())
	for _, s := range []Slot{
		{}, {Key: ^uint64(0), Val: -1, State: slotFull},
		{Key: 42, Val: 1 << 60, State: slotTombstone},
	} {
		c.Encode(buf, s)
		if got := c.Decode(buf); got != s {
			t.Errorf("round trip %+v -> %+v", s, got)
		}
	}
}

func TestSingleRankMatchesMap(t *testing.T) {
	c := testCluster(1)
	d := core.New(c, coreConfig())
	c.Engine.Spawn("app", func(p *vtime.Proc) {
		cl := d.NewClient(p, 0)
		s, err := Open(cl, "kv", 4096)
		if err != nil {
			t.Error(err)
			return
		}
		model := make(map[uint64]int64)
		rng := rand.New(rand.NewSource(11))
		for op := 0; op < 3000; op++ {
			key := uint64(rng.Intn(800)) // collisions guaranteed
			switch rng.Intn(4) {
			case 0, 1: // put
				val := rng.Int63()
				if err := s.Put(key, val); err != nil {
					t.Error(err)
					return
				}
				model[key] = val
			case 2: // get
				got, ok := s.Get(key)
				want, wok := model[key]
				if ok != wok || (ok && got != want) {
					t.Errorf("op %d: Get(%d) = %d,%v; want %d,%v", op, key, got, ok, want, wok)
					return
				}
			case 3: // delete
				got := s.Delete(key)
				_, want := model[key]
				if got != want {
					t.Errorf("op %d: Delete(%d) = %v, want %v", op, key, got, want)
					return
				}
				delete(model, key)
			}
		}
		if got := s.Len(); got != int64(len(model)) {
			t.Errorf("Len = %d, model %d", got, len(model))
		}
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiRankConcurrentAccess(t *testing.T) {
	const nodes, ranks, perRank = 2, 6, 300
	c := testCluster(nodes)
	d := core.New(c, coreConfig())
	for r := 0; r < ranks; r++ {
		r := r
		c.Engine.Spawn(fmt.Sprintf("rank%d", r), func(p *vtime.Proc) {
			cl := d.NewClient(p, r%nodes)
			s, err := Open(cl, "shared-kv", 8192)
			if err != nil {
				t.Error(err)
				return
			}
			// Disjoint key spaces written concurrently (the same pages are
			// shared: keys hash everywhere).
			base := uint64(r) << 32
			for i := uint64(0); i < perRank; i++ {
				if err := s.Put(base|i, int64(r*1000)+int64(i)); err != nil {
					t.Error(err)
					return
				}
			}
			cl.Barrier("written", ranks)
			// Every rank reads every other rank's keys.
			for other := 0; other < ranks; other++ {
				ob := uint64(other) << 32
				for i := uint64(0); i < perRank; i += 17 {
					got, ok := s.Get(ob | i)
					if !ok || got != int64(other*1000)+int64(i) {
						t.Errorf("rank %d: Get(r%d|%d) = %d,%v", r, other, i, got, ok)
						return
					}
				}
			}
			cl.Barrier("read", ranks)
			// Each rank deletes a slice of its own keys.
			for i := uint64(0); i < perRank; i += 2 {
				if !s.Delete(base | i) {
					t.Errorf("rank %d: delete %d missed", r, i)
					return
				}
			}
			cl.Barrier("deleted", ranks)
			if r == 0 {
				want := int64(ranks * perRank / 2)
				if got := s.Len(); got != want {
					t.Errorf("len = %d, want %d", got, want)
				}
				_ = d.Shutdown(p)
			}
		})
	}
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestContendedSameKeys(t *testing.T) {
	// All ranks hammer the same small key set; last write wins per key,
	// and the stripe locks keep each probe atomic (no lost slots, no
	// duplicate keys).
	const ranks = 4
	c := testCluster(2)
	d := core.New(c, coreConfig())
	for r := 0; r < ranks; r++ {
		r := r
		c.Engine.Spawn(fmt.Sprintf("rank%d", r), func(p *vtime.Proc) {
			cl := d.NewClient(p, r%2)
			s, err := Open(cl, "hot-kv", 1024)
			if err != nil {
				t.Error(err)
				return
			}
			for round := 0; round < 20; round++ {
				for key := uint64(0); key < 32; key++ {
					if err := s.Put(key, int64(r)); err != nil {
						t.Error(err)
						return
					}
					if _, ok := s.Get(key); !ok {
						t.Errorf("rank %d: key %d vanished mid-round", r, key)
						return
					}
				}
			}
			cl.Barrier("hammered", ranks)
			if r == 0 {
				if got := s.Len(); got != 32 {
					t.Errorf("len = %d, want 32 (duplicate or lost slots)", got)
				}
				for key := uint64(0); key < 32; key++ {
					if v, ok := s.Get(key); !ok || v < 0 || v >= ranks {
						t.Errorf("key %d = %d,%v", key, v, ok)
					}
				}
				_ = d.Shutdown(p)
			}
		})
	}
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTableFull(t *testing.T) {
	c := testCluster(1)
	d := core.New(c, coreConfig())
	c.Engine.Spawn("app", func(p *vtime.Proc) {
		cl := d.NewClient(p, 0)
		s, err := Open(cl, "tiny", 8) // rounds to 8 slots, probeMax 8
		if err != nil {
			t.Error(err)
			return
		}
		var full bool
		for k := uint64(0); k < 64; k++ {
			if err := s.Put(k, 1); err == ErrFull {
				full = true
				break
			} else if err != nil {
				t.Error(err)
				return
			}
		}
		if !full {
			t.Error("64 puts into 8 slots never reported ErrFull")
		}
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReopenValidatesCapacity(t *testing.T) {
	c := testCluster(1)
	d := core.New(c, coreConfig())
	c.Engine.Spawn("app", func(p *vtime.Proc) {
		cl := d.NewClient(p, 0)
		if _, err := Open(cl, "cap", 1000); err != nil { // rounds to 1024
			t.Error(err)
			return
		}
		if _, err := Open(cl, "cap", 1024); err != nil {
			t.Errorf("same-capacity reopen failed: %v", err)
		}
		if _, err := Open(cl, "cap", 5000); err == nil {
			t.Error("mismatched capacity accepted")
		}
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}
