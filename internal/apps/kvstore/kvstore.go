// Package kvstore implements the paper's Fig. 3 "read, write, and append
// global" case study: a distributed key-value store whose table lives in
// a MegaMmap shared vector. Reads and writes hit the same region
// simultaneously from every rank; single-page transactions are atomic
// because the runtime serializes same-page MemoryTasks, and probe windows
// that may span pages take a striped distributed lock, exactly the
// escalation rule the paper prescribes.
//
// The table is open-addressed with linear probing and tombstone deletes;
// slots are fixed-size records so the store works over any tier the
// pages land on.
package kvstore

import (
	"encoding/binary"
	"errors"
	"fmt"

	"megammap/internal/core"
)

// Slot states.
const (
	slotEmpty int8 = iota
	slotFull
	slotTombstone
)

// Slot is one table entry.
type Slot struct {
	Key   uint64
	Val   int64
	State int8
}

// SlotSize is the encoded slot size in bytes.
const SlotSize = 24

// SlotCodec encodes slots for MegaMmap vectors.
type SlotCodec struct{}

// Size implements core.Codec.
func (SlotCodec) Size() int { return SlotSize }

// Encode implements core.Codec.
func (SlotCodec) Encode(dst []byte, s Slot) {
	binary.LittleEndian.PutUint64(dst, s.Key)
	binary.LittleEndian.PutUint64(dst[8:], uint64(s.Val))
	dst[16] = byte(s.State)
}

// Decode implements core.Codec.
func (SlotCodec) Decode(src []byte) Slot {
	return Slot{
		Key:   binary.LittleEndian.Uint64(src),
		Val:   int64(binary.LittleEndian.Uint64(src[8:])),
		State: int8(src[16]),
	}
}

// ErrFull reports that a Put found no free slot within the probe limit.
var ErrFull = errors.New("kvstore: table full (probe limit reached)")

// Store is a shared key-value table handle; every rank opens its own.
type Store struct {
	cl       *core.Client
	v        *core.Vector[Slot]
	name     string
	capacity int64
	stripes  int
	probeMax int64
}

// Open connects to (or creates) the named store with the given slot
// capacity (fixed at creation, rounded up to a power of two).
func Open(cl *core.Client, name string, capacity int64, opts ...core.VectorOpt) (*Store, error) {
	cap2 := int64(1)
	for cap2 < capacity {
		cap2 <<= 1
	}
	v, err := core.Open[Slot](cl, name, SlotCodec{}, opts...)
	if err != nil {
		return nil, err
	}
	if v.Len() == 0 {
		v.Resize(cap2)
	} else if v.Len() != cap2 {
		return nil, fmt.Errorf("kvstore: %q has capacity %d, want %d", name, v.Len(), cap2)
	}
	probe := cap2
	if probe > 64 {
		probe = 64
	}
	return &Store{
		cl: cl, v: v, name: name,
		capacity: cap2, stripes: 16, probeMax: probe,
	}, nil
}

// Capacity returns the slot capacity.
func (s *Store) Capacity() int64 { return s.capacity }

// BoundMemory caps this handle's page cache at maxBytes (0 = unbounded);
// the serving plane actuates per-tenant fast-tier quotas through it.
func (s *Store) BoundMemory(maxBytes int64) { s.v.BoundMemory(maxBytes) }

// hash mixes a key into a slot index.
func (s *Store) hash(key uint64) int64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return int64(key & uint64(s.capacity-1))
}

// stripeSpan returns the slots covered by one lock stripe; it is at
// least the probe window, so any window touches at most two stripes.
func (s *Store) stripeSpan() int64 {
	span := s.capacity / int64(s.stripes)
	if span < s.probeMax {
		span = s.probeMax
	}
	return span
}

// lockWindow acquires the stripe locks covering the probe window
// starting at home, in ascending stripe order (deadlock-free), and
// returns the unlock function. Two keys whose probe chains overlap are
// always serialized by a common stripe, so concurrent inserts can never
// claim the same empty slot.
func (s *Store) lockWindow(home int64) func() {
	span := s.stripeSpan()
	s1 := home / span
	s2 := ((home + s.probeMax - 1) & (s.capacity - 1)) / span
	if s1 == s2 {
		name := fmt.Sprintf("%s/stripe%d", s.name, s1)
		s.cl.Lock(name)
		return func() { s.cl.Unlock(name) }
	}
	if s2 < s1 {
		s1, s2 = s2, s1
	}
	a := fmt.Sprintf("%s/stripe%d", s.name, s1)
	b := fmt.Sprintf("%s/stripe%d", s.name, s2)
	s.cl.Lock(a)
	s.cl.Lock(b)
	return func() { s.cl.Unlock(b); s.cl.Unlock(a) }
}

// probeTx opens a read-write global transaction over the probe window
// starting at the key's home slot (wrapping windows split the declared
// range at the table end; correctness does not depend on the hint).
func (s *Store) probeTx(home int64) {
	n := s.probeMax
	if home+n > s.capacity {
		n = s.capacity - home
	}
	s.v.SeqTxBegin(home, n, core.ReadWrite|core.Global)
}

// Put inserts or updates a key. The probe window may cross pages, so the
// operation holds the key's stripe lock (paper: multi-page transactions
// escalate to synchronization primitives).
func (s *Store) Put(key uint64, val int64) error {
	home := s.hash(key)
	unlock := s.lockWindow(home)
	defer unlock()
	s.probeTx(home)
	defer s.v.TxEnd()
	firstFree := int64(-1)
	for i := int64(0); i < s.probeMax; i++ {
		idx := (home + i) & (s.capacity - 1)
		slot := s.v.Get(idx)
		switch {
		case slot.State == slotFull && slot.Key == key:
			s.v.Set(idx, Slot{Key: key, Val: val, State: slotFull})
			return nil
		case slot.State == slotEmpty:
			if firstFree < 0 {
				firstFree = idx
			}
			// An empty slot ends the probe chain.
			s.v.Set(firstFree, Slot{Key: key, Val: val, State: slotFull})
			return nil
		case slot.State == slotTombstone && firstFree < 0:
			firstFree = idx
		}
	}
	if firstFree >= 0 {
		s.v.Set(firstFree, Slot{Key: key, Val: val, State: slotFull})
		return nil
	}
	return ErrFull
}

// Get looks a key up.
func (s *Store) Get(key uint64) (int64, bool) {
	home := s.hash(key)
	unlock := s.lockWindow(home)
	defer unlock()
	s.probeTx(home)
	defer s.v.TxEnd()
	for i := int64(0); i < s.probeMax; i++ {
		idx := (home + i) & (s.capacity - 1)
		slot := s.v.Get(idx)
		switch {
		case slot.State == slotFull && slot.Key == key:
			return slot.Val, true
		case slot.State == slotEmpty:
			return 0, false
		}
	}
	return 0, false
}

// Delete removes a key, reporting whether it was present.
func (s *Store) Delete(key uint64) bool {
	home := s.hash(key)
	unlock := s.lockWindow(home)
	defer unlock()
	s.probeTx(home)
	defer s.v.TxEnd()
	for i := int64(0); i < s.probeMax; i++ {
		idx := (home + i) & (s.capacity - 1)
		slot := s.v.Get(idx)
		switch {
		case slot.State == slotFull && slot.Key == key:
			s.v.Set(idx, Slot{State: slotTombstone})
			return true
		case slot.State == slotEmpty:
			return false
		}
	}
	return false
}

// Len counts live entries (a full scan; diagnostics).
func (s *Store) Len() int64 {
	var n int64
	s.v.SeqTxBegin(0, s.capacity, core.ReadOnly|core.Global)
	for _, slot := range s.v.All(0, s.capacity) {
		if slot.State == slotFull {
			n++
		}
	}
	s.v.TxEnd()
	return n
}
