package dbscan

import (
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/device"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  64 * device.MB,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(4 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
			{Name: "hdd", Profile: device.HDDProfile(256 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(4 * device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme", "hdd"}
	cfg.DefaultPageSize = 12 << 10
	return cfg
}

func genDataset(t *testing.T, c *cluster.Cluster, n, k int) string {
	t.Helper()
	const url = "pq:///data/db.parquet:pts"
	g := datagen.New(datagen.DefaultSpec(n, k, 42))
	c.Engine.Spawn("datagen", func(p *vtime.Proc) {
		b, err := stager.New(c).Open(url)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := g.WriteTo(p, b, 0); err != nil {
			t.Error(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return url
}

func TestBBoxGap(t *testing.T) {
	a := leaf{lo: [3]float64{0, 0, 0}, hi: [3]float64{1, 1, 1}}
	b := leaf{lo: [3]float64{4, 0, 0}, hi: [3]float64{5, 1, 1}}
	if got := bboxGap(a, b); got != 3 {
		t.Errorf("gap = %f, want 3", got)
	}
	c := leaf{lo: [3]float64{0.5, 0.5, 0.5}, hi: [3]float64{2, 2, 2}}
	if got := bboxGap(a, c); got != 0 {
		t.Errorf("overlapping gap = %f, want 0", got)
	}
}

func TestMergeLeaves(t *testing.T) {
	cfg := Config{Eps: 2, MinPts: 10}.Defaults()
	leaves := []leaf{
		{count: 50, lo: [3]float64{0, 0, 0}, hi: [3]float64{1, 1, 1}},
		{count: 50, lo: [3]float64{2, 0, 0}, hi: [3]float64{3, 1, 1}},   // within eps of 0
		{count: 50, lo: [3]float64{50, 0, 0}, hi: [3]float64{51, 1, 1}}, // far
		{count: 3, lo: [3]float64{90, 0, 0}, hi: [3]float64{91, 1, 1}},  // noise
	}
	labels, clusters, noise := mergeLeaves(cfg, leaves)
	if clusters != 2 {
		t.Errorf("clusters = %d, want 2", clusters)
	}
	if labels[0] != labels[1] {
		t.Error("adjacent leaves not merged")
	}
	if labels[2] == labels[0] {
		t.Error("distant leaf wrongly merged")
	}
	if labels[3] != -1 || noise != 3 {
		t.Errorf("noise handling wrong: label=%d noise=%d", labels[3], noise)
	}
}

func TestSplitAxisPicksWidestVariance(t *testing.T) {
	s := newNodeStats()
	for i := 0; i < 10; i++ {
		s.add(datagen.Particle{X: float32(i * 100), Y: 5, Z: 5})
	}
	axis, split := splitAxis(s)
	if axis != 0 {
		t.Errorf("axis = %d, want 0 (X has all the variance)", axis)
	}
	if split < 100 || split > 800 {
		t.Errorf("split = %f, want the X mean 450", split)
	}
}

func TestStatsFlatRoundTrip(t *testing.T) {
	s := newNodeStats()
	s.add(datagen.Particle{X: 1, Y: 2, Z: 3})
	s.add(datagen.Particle{X: -1, Y: 5, Z: 0})
	got := statsFromFlat(s.flat())
	if got.count != 2 || got.sum[1] != 7 || got.lo[0] != -1 || got.hi[2] != 3 {
		t.Errorf("round trip lost data: %+v", got)
	}
}

func runMega(t *testing.T, nodes, ranks, n, k int, cfg Config) (Result, *cluster.Cluster, *core.DSM) {
	t.Helper()
	c := testCluster(nodes)
	url := genDataset(t, c, n, k)
	cfg.DatasetURL = url
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, ranks)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, c, d
}

func TestMegaFindsHaloClusters(t *testing.T) {
	res, c, _ := runMega(t, 2, 4, 8000, 4, Config{AssignURL: "file:///out/db.bin"})
	if res.Clusters != 4 {
		t.Errorf("clusters = %d, want 4 halos", res.Clusters)
	}
	if res.Leaves < 4 {
		t.Errorf("leaves = %d, want >= 4", res.Leaves)
	}
	if res.Noise > 8000/4 {
		t.Errorf("noise = %d, want < 25%% (halo tails)", res.Noise)
	}
	if got := c.PFSSize("/out/db.bin"); got != 8000*4 {
		t.Errorf("assignment file = %d bytes, want %d", got, 8000*4)
	}
}

func TestMPIMatchesMega(t *testing.T) {
	mres, _, _ := runMega(t, 2, 4, 6000, 3, Config{})

	c := testCluster(2)
	url := genDataset(t, c, 6000, 3)
	w := mpi.NewWorld(c, 4)
	st := stager.New(c)
	var pres Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := MPI(r, st, Config{DatasetURL: url})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			pres = out
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Clusters != pres.Clusters || mres.Leaves != pres.Leaves || mres.Noise != pres.Noise {
		t.Errorf("variants disagree: mega %+v vs mpi %+v", mres, pres)
	}
	if pres.Clusters != 3 {
		t.Errorf("clusters = %d, want 3", pres.Clusters)
	}
}

func TestMegaBoundedStillCorrect(t *testing.T) {
	res, _, d := runMega(t, 2, 4, 6000, 3, Config{BoundBytes: 24 << 10})
	if res.Clusters != 3 {
		t.Errorf("bounded clusters = %d, want 3", res.Clusters)
	}
	if f, _, _ := d.Stats(); f == 0 {
		t.Error("expected faults under tight bound")
	}
}
