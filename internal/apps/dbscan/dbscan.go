// Package dbscan implements the paper's µDBSCAN-style workload: a
// distributed k-d decomposition splits the dataset into µclusters
// (leaves), which then merge into full clusters by spatial proximity;
// leaves under min_pts become noise. Both variants run identical
// numerics — the k-d tree shape is decided by global reductions, so every
// rank deterministically grows the same tree — and differ only in how
// point coordinates are accessed: through MegaMmap shared vectors
// (transactions, bounded pcache, tiering) or node-local arrays with MPI
// collectives.
//
// Simplifications vs µDBSCAN, documented per DESIGN.md: splits use the
// exact per-axis mean (one allreduce) rather than a sampled median
// estimate, and leaf merging uses bounding-box gap distance rather than
// exact point pairs. Both preserve the communication and data-movement
// shape the paper evaluates.
package dbscan

import (
	"math"

	"megammap/internal/datagen"
	"megammap/internal/vtime"
)

// Config parameterizes a run.
type Config struct {
	DatasetURL string
	AssignURL  string  // persisted per-point cluster ids ("" = skip)
	Eps        float64 // neighborhood radius
	MinPts     int     // minimum cluster population
	// MaxDepth caps k-d recursion (0 = derived from dataset size).
	MaxDepth int
	// LeafTarget stops splitting below this population (0 = 4*MinPts).
	LeafTarget int
	// BoundBytes caps the dataset vector's pcache (MegaMmap variant).
	BoundBytes int64
	// CostPerPoint is the modeled compute per point per tree level.
	CostPerPoint vtime.Duration
}

// Defaults fills unset fields with the paper's parameters (eps=8,
// min_pts=64).
func (c Config) Defaults() Config {
	if c.Eps == 0 {
		c.Eps = 8
	}
	if c.MinPts == 0 {
		c.MinPts = 64
	}
	if c.LeafTarget == 0 {
		c.LeafTarget = c.MinPts
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = 24
	}
	if c.CostPerPoint == 0 {
		c.CostPerPoint = 8 * vtime.Nanosecond
	}
	return c
}

// Result reports a clustering.
type Result struct {
	Clusters int   // clusters with >= MinPts points
	Leaves   int   // µclusters produced by the k-d phase
	Noise    int64 // points in sub-MinPts clusters
	Points   int64
}

// axisOf extracts coordinate a (0..2) of a particle position.
func axisOf(pt datagen.Particle, a int) float64 {
	switch a {
	case 0:
		return float64(pt.X)
	case 1:
		return float64(pt.Y)
	default:
		return float64(pt.Z)
	}
}

// nodeStats aggregates one k-d node's population: count, per-axis sum and
// sum of squares, and the bounding box. It allreduces as a flat vector.
type nodeStats struct {
	count   float64
	sum, sq [3]float64
	lo, hi  [3]float64
}

func newNodeStats() nodeStats {
	var s nodeStats
	for a := 0; a < 3; a++ {
		s.lo[a], s.hi[a] = math.MaxFloat64, -math.MaxFloat64
	}
	return s
}

func (s *nodeStats) add(pt datagen.Particle) {
	s.count++
	for a := 0; a < 3; a++ {
		v := axisOf(pt, a)
		s.sum[a] += v
		s.sq[a] += v * v
		if v < s.lo[a] {
			s.lo[a] = v
		}
		if v > s.hi[a] {
			s.hi[a] = v
		}
	}
}

func (s *nodeStats) flat() []float64 {
	out := make([]float64, 0, 13)
	out = append(out, s.count)
	out = append(out, s.sum[:]...)
	out = append(out, s.sq[:]...)
	out = append(out, s.lo[:]...)
	out = append(out, s.hi[:]...)
	return out
}

func statsFromFlat(v []float64) nodeStats {
	var s nodeStats
	s.count = v[0]
	copy(s.sum[:], v[1:4])
	copy(s.sq[:], v[4:7])
	copy(s.lo[:], v[7:10])
	copy(s.hi[:], v[10:13])
	return s
}

// reduceStats element-wise combines flats: count/sum/sq add, lo min, hi
// max.
func reduceStats(a, b []float64) []float64 {
	out := make([]float64, 13)
	for i := 0; i < 7; i++ {
		out[i] = a[i] + b[i]
	}
	for i := 7; i < 10; i++ {
		out[i] = math.Min(a[i], b[i])
	}
	for i := 10; i < 13; i++ {
		out[i] = math.Max(a[i], b[i])
	}
	return out
}

// splitAxis picks the axis with the largest variance (the paper's
// entropy-maximizing axis) and its mean split point.
func splitAxis(s nodeStats) (axis int, split float64) {
	bestVar := -1.0
	for a := 0; a < 3; a++ {
		mean := s.sum[a] / s.count
		variance := s.sq[a]/s.count - mean*mean
		if variance > bestVar {
			bestVar = variance
			axis, split = a, mean
		}
	}
	return axis, split
}

// leaf is one µcluster's metadata.
type leaf struct {
	count int64
	lo    [3]float64
	hi    [3]float64
}

// isLeaf decides whether a node stops splitting: small population, depth
// cap, or a bounding box already tighter than eps on every axis.
func isLeaf(cfg Config, s nodeStats, depth int) bool {
	if int(s.count) <= cfg.LeafTarget || depth >= cfg.MaxDepth {
		return true
	}
	tight := true
	for a := 0; a < 3; a++ {
		if s.hi[a]-s.lo[a] > cfg.Eps {
			tight = false
			break
		}
	}
	return tight
}

// bboxGap returns the minimum distance between two axis-aligned boxes
// (zero when they overlap).
func bboxGap(a, b leaf) float64 {
	var d2 float64
	for ax := 0; ax < 3; ax++ {
		gap := math.Max(a.lo[ax]-b.hi[ax], b.lo[ax]-a.hi[ax])
		if gap > 0 {
			d2 += gap * gap
		}
	}
	return math.Sqrt(d2)
}

// mergeLeaves union-finds the dense leaves (count >= MinPts) whose boxes
// are within eps and labels each with its final cluster id. Sparse
// leaves are noise (-1) and — as in DBSCAN, where low-density points
// never density-connect clusters — do not participate in merging, so a
// wide sparse box between two halos cannot bridge them. It returns
// per-leaf labels, the cluster count and the noise population.
func mergeLeaves(cfg Config, leaves []leaf) ([]int32, int, int64) {
	n := len(leaves)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	dense := func(i int) bool { return leaves[i].count >= int64(cfg.MinPts) }
	for i := 0; i < n; i++ {
		if !dense(i) {
			continue
		}
		for j := i + 1; j < n; j++ {
			if dense(j) && bboxGap(leaves[i], leaves[j]) <= cfg.Eps {
				parent[find(i)] = find(j)
			}
		}
	}
	ids := make(map[int]int32)
	labels := make([]int32, n)
	next := int32(0)
	for i := range leaves {
		if !dense(i) {
			labels[i] = -1
			continue
		}
		root := find(i)
		id, ok := ids[root]
		if !ok {
			id = next
			next++
			ids[root] = id
		}
		labels[i] = id
	}
	// Border adoption (DBSCAN border points): a sparse leaf within eps of
	// a dense leaf joins that leaf's cluster — joining, never bridging,
	// exactly as border points are density-reachable but not
	// density-connecting. Nearest dense leaf wins.
	var noise int64
	for i := range leaves {
		if labels[i] >= 0 {
			continue
		}
		bestGap, bestLabel := math.MaxFloat64, int32(-1)
		for j := range leaves {
			if !dense(j) {
				continue
			}
			if gap := bboxGap(leaves[i], leaves[j]); gap <= cfg.Eps && gap < bestGap {
				bestGap, bestLabel = gap, labels[j]
			}
		}
		labels[i] = bestLabel
		if bestLabel < 0 {
			noise += leaves[i].count
		}
	}
	return labels, int(next), noise
}
