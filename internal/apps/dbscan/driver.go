package dbscan

import (
	"encoding/binary"
	"fmt"

	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/mpi"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

// idxPt is one working record of the k-d decomposition: the particle plus
// its index in the original dataset, so leaves can label the output.
type idxPt struct {
	Pt  datagen.Particle
	Idx int64
}

// idxPtSize is the encoded record size (24-byte particle + 8-byte index).
const idxPtSize = 32

// idxPtCodec encodes working records for MegaMmap vectors.
type idxPtCodec struct{}

func (idxPtCodec) Size() int { return idxPtSize }

func (idxPtCodec) Encode(dst []byte, v idxPt) {
	datagen.EncodeParticle(dst, v.Pt)
	binary.LittleEndian.PutUint64(dst[24:], uint64(v.Idx))
}

func (idxPtCodec) Decode(src []byte) idxPt {
	return idxPt{
		Pt:  datagen.DecodeParticle(src),
		Idx: int64(binary.LittleEndian.Uint64(src[24:])),
	}
}

// Mega runs the MegaMmap variant on one rank. Following µDBSCAN's
// append-only k-d construction (paper §III-A), every split physically
// redistributes the working set into append-only child vectors, so each
// tree level is a contiguous sequential sweep the prefetcher can hide.
// Like the paper's process-partitioned recursion, subsets stay local:
// every rank holds its own fragment vector of each tree node (the tree
// itself is global — split decisions come from allreduced statistics), so
// redistribution never crosses ranks and scratch traffic stays on-node.
func Mega(r *mpi.Rank, d *core.DSM, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	cl := d.NewClient(r.Proc(), r.Node().ID)
	pts, err := core.Open[datagen.Particle](cl, cfg.DatasetURL, datagen.ParticleCodec{})
	if err != nil {
		return Result{}, err
	}
	if cfg.BoundBytes > 0 {
		pts.BoundMemory(cfg.BoundBytes)
	}
	pts.Pgas(r.Rank(), r.Size())
	n := pts.Len()
	if n == 0 {
		return Result{}, fmt.Errorf("dbscan: dataset %s is empty", cfg.DatasetURL)
	}

	// Handles are memoized per fragment so pages appended while splitting
	// a parent are still pcache-resident when the child's own pass runs.
	handles := make(map[string]*core.Vector[idxPt])
	openWork := func(name string) (*core.Vector[idxPt], error) {
		if v := handles[name]; v != nil {
			return v, nil
		}
		v, err := core.Open[idxPt](cl, name, idxPtCodec{})
		if err != nil {
			return nil, err
		}
		if cfg.BoundBytes > 0 {
			v.BoundMemory(cfg.BoundBytes)
		}
		handles[name] = v
		return v, nil
	}
	closeWork := func(name string) {
		if v := handles[name]; v != nil {
			v.Destroy()
			delete(handles, name)
		}
	}

	// The temporary leaf-id output, rewritten to final labels after merge.
	out, err := core.Open[int32](cl, "dbscan/leafids", core.Int32Codec{})
	if err != nil {
		return Result{}, err
	}
	if cfg.BoundBytes > 0 {
		out.BoundMemory(cfg.BoundBytes)
	}
	if r.Rank() == 0 {
		out.Resize(n)
	}
	r.Barrier()

	// Root working fragment: copy this rank's partition (particle,
	// index) into its private scratch vector.
	frag := func(path string) string {
		return fmt.Sprintf("dbscan/kd-%s.r%d", path, r.Rank())
	}
	root, err := openWork(frag("T"))
	if err != nil {
		return Result{}, err
	}
	off, ln := pts.LocalOff(), pts.LocalLen()
	pts.SeqTxBegin(off, ln, core.ReadOnly)
	root.SeqTxBegin(0, ln, core.Append)
	buf := make([]datagen.Particle, 512)
	for done := int64(0); done < ln; {
		m := int64(len(buf))
		if m > ln-done {
			m = ln - done
		}
		pts.GetRange(off+done, buf[:m])
		for j := int64(0); j < m; j++ {
			root.Append(idxPt{Pt: buf[j], Idx: off + done + j})
		}
		r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * m / 2))
		done += m
	}
	root.TxEnd()
	pts.TxEnd()
	r.Barrier()

	// Depth-first split recursion: every rank walks the same stack; the
	// split decision comes from a global reduction, so the tree shape is
	// identical everywhere.
	type task struct {
		path  string
		depth int
	}
	var leaves []leaf
	stack := []task{{path: "T", depth: 0}}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		v, verr := openWork(frag(t.path))
		if verr != nil {
			return Result{}, verr
		}
		voff, vln := int64(0), v.Len()

		// Pass 1: node statistics from a sequential sweep.
		stats := newNodeStats()
		wbuf := make([]idxPt, 512)
		v.SeqTxBegin(voff, vln, core.ReadOnly)
		for done := int64(0); done < vln; {
			m := int64(len(wbuf))
			if m > vln-done {
				m = vln - done
			}
			v.GetRange(voff+done, wbuf[:m])
			for _, w := range wbuf[:m] {
				stats.add(w.Pt)
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * m))
			done += m
		}
		v.TxEnd()
		reduced := r.Allreduce(stats.flat(), 13*8, func(a, b any) any {
			return reduceStats(a.([]float64), b.([]float64))
		})
		global := statsFromFlat(reduced.([]float64))
		if global.count == 0 {
			closeWork(frag(t.path))
			r.Barrier()
			continue
		}

		if isLeaf(cfg, global, t.depth) {
			// Leaf: label this µcluster's points with the leaf id.
			id := int32(len(leaves))
			leaves = append(leaves, leaf{
				count: int64(global.count), lo: global.lo, hi: global.hi,
			})
			v.SeqTxBegin(voff, vln, core.ReadOnly)
			out.SeqTxBegin(voff, vln, core.WriteOnly|core.Global)
			for done := int64(0); done < vln; {
				m := int64(len(wbuf))
				if m > vln-done {
					m = vln - done
				}
				v.GetRange(voff+done, wbuf[:m])
				for _, w := range wbuf[:m] {
					out.Set(w.Idx, id)
				}
				r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * m / 2))
				done += m
			}
			out.TxEnd()
			v.TxEnd()
		} else {
			// Split: append each record to the left or right child.
			axis, split := splitAxis(global)
			left, lerr := openWork(frag(t.path + "L"))
			if lerr != nil {
				return Result{}, lerr
			}
			right, rerr := openWork(frag(t.path + "R"))
			if rerr != nil {
				return Result{}, rerr
			}
			v.SeqTxBegin(voff, vln, core.ReadOnly)
			left.SeqTxBegin(0, vln, core.Append)
			right.SeqTxBegin(0, vln, core.Append)
			for done := int64(0); done < vln; {
				m := int64(len(wbuf))
				if m > vln-done {
					m = vln - done
				}
				v.GetRange(voff+done, wbuf[:m])
				for _, w := range wbuf[:m] {
					if axisOf(w.Pt, axis) < split {
						left.Append(w)
					} else {
						right.Append(w)
					}
				}
				r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * m))
				done += m
			}
			right.TxEnd()
			left.TxEnd()
			v.TxEnd()
			// The children stay open (and pcache-resident) in the handle
			// cache; their own passes pick them up without refaulting.
			stack = append(stack,
				task{path: t.path + "R", depth: t.depth + 1},
				task{path: t.path + "L", depth: t.depth + 1})
		}
		closeWork(frag(t.path)) // this rank's scratch is no longer needed
		r.Barrier()
	}

	leafLabels, clusters, noise := mergeLeaves(cfg, leaves)

	// Rewrite leaf ids into final cluster labels and persist.
	var final *core.Vector[int32]
	if cfg.AssignURL != "" {
		if final, err = core.Open[int32](cl, cfg.AssignURL, core.Int32Codec{}); err != nil {
			return Result{}, err
		}
		if r.Rank() == 0 {
			final.Resize(n)
		}
	}
	r.Barrier()
	out.Pgas(r.Rank(), r.Size())
	ooff, oln := out.LocalOff(), out.LocalLen()
	out.SeqTxBegin(ooff, oln, core.ReadOnly)
	if final != nil {
		final.SeqTxBegin(ooff, oln, core.WriteOnly)
	}
	for i := ooff; i < ooff+oln; i++ {
		lbl := leafLabels[out.Get(i)]
		if final != nil {
			final.Set(i, lbl)
		}
	}
	if final != nil {
		final.TxEnd()
	}
	out.TxEnd()
	out.Close()
	r.Barrier()
	if r.Rank() == 0 {
		out.Destroy()
	}
	r.Barrier()
	return Result{Clusters: clusters, Leaves: len(leaves), Noise: noise, Points: n}, nil
}

// MPI runs the message-passing variant on one rank: the same two-pass
// split recursion over node-local record arrays (the redistribution stays
// in memory), with the block of points loaded up front — subject to the
// OOM killer — and assignments written synchronously to the PFS.
func MPI(r *mpi.Rank, st *stager.Stager, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	b, err := st.Open(cfg.DatasetURL)
	if err != nil {
		return Result{}, err
	}
	n := b.Size() / datagen.ParticleSize
	if n == 0 {
		return Result{}, fmt.Errorf("dbscan: dataset %s is empty", cfg.DatasetURL)
	}
	per := n / int64(r.Size())
	rem := n % int64(r.Size())
	off := int64(r.Rank())*per + min64(int64(r.Rank()), rem)
	ln := per
	if int64(r.Rank()) < rem {
		ln++
	}

	// Working memory: the record array plus the split scratch (2 copies),
	// allocated from physical DRAM.
	allocBytes := 2 * ln * idxPtSize
	if err := r.Node().Alloc(allocBytes); err != nil {
		return Result{}, fmt.Errorf("dbscan: %w", err)
	}
	defer r.Node().Free(allocBytes)
	raw, err := b.ReadRange(r.Proc(), r.Node().ID, off*datagen.ParticleSize, ln*datagen.ParticleSize)
	if err != nil {
		return Result{}, err
	}
	work := make([]idxPt, ln)
	for i := range work {
		work[i] = idxPt{Pt: datagen.DecodeParticle(raw[i*datagen.ParticleSize:]), Idx: off + int64(i)}
	}
	labels := make([]int32, ln)

	type task struct {
		recs  []idxPt
		depth int
	}
	var leaves []leaf
	stack := []task{{recs: work, depth: 0}}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]

		stats := newNodeStats()
		for i := range t.recs {
			stats.add(t.recs[i].Pt)
		}
		r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * int64(len(t.recs))))
		reduced := r.Allreduce(stats.flat(), 13*8, func(a, b any) any {
			return reduceStats(a.([]float64), b.([]float64))
		})
		global := statsFromFlat(reduced.([]float64))
		if global.count == 0 {
			continue
		}
		if isLeaf(cfg, global, t.depth) {
			id := int32(len(leaves))
			leaves = append(leaves, leaf{
				count: int64(global.count), lo: global.lo, hi: global.hi,
			})
			for _, w := range t.recs {
				labels[w.Idx-off] = id
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * int64(len(t.recs)) / 2))
			continue
		}
		axis, split := splitAxis(global)
		var left, right []idxPt
		for _, w := range t.recs {
			if axisOf(w.Pt, axis) < split {
				left = append(left, w)
			} else {
				right = append(right, w)
			}
		}
		r.Compute(vtime.Duration(int64(cfg.CostPerPoint) * int64(len(t.recs))))
		stack = append(stack,
			task{recs: right, depth: t.depth + 1},
			task{recs: left, depth: t.depth + 1})
	}

	leafLabels, clusters, noise := mergeLeaves(cfg, leaves)
	if cfg.AssignURL != "" {
		ob, oerr := st.Open(cfg.AssignURL)
		if oerr != nil {
			return Result{}, oerr
		}
		bufOut := make([]byte, ln*4)
		for i := int64(0); i < ln; i++ {
			l := leafLabels[labels[i]]
			binary.LittleEndian.PutUint32(bufOut[i*4:], uint32(l))
		}
		if werr := ob.WriteRange(r.Proc(), r.Node().ID, off*4, bufOut); werr != nil {
			return Result{}, werr
		}
	}
	r.Barrier()
	return Result{Clusters: clusters, Leaves: len(leaves), Noise: noise, Points: n}, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
