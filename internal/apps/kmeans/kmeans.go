// Package kmeans implements the paper's KMeans workload: a KMeans‖-style
// clustering of 3-D particle positions, in two variants — a MegaMmap
// implementation (shared vectors + transactions, collectives from the
// mpi runtime) and a Spark-model baseline (the MLlib iteration shape on
// the sparklike engine). Both run the same numerics so results are
// directly comparable; only the data path differs.
//
// Access pattern (paper §IV): sequential, read-only sweeps over an evenly
// partitioned dataset per iteration, a small allreduce per iteration, and
// a final partitioned write of cluster assignments.
package kmeans

import (
	"math"

	"megammap/internal/datagen"
	"megammap/internal/vtime"
)

// Config parameterizes one run.
type Config struct {
	DatasetURL string // particle dataset (24-byte records)
	AssignURL  string // where cluster assignments persist ("" = skip)
	K          int
	MaxIter    int
	Seed       uint64
	// InitSpan bounds the dataset prefix the initial centroids sample
	// from (0 = whole dataset). A span within one rank's partition keeps
	// initialization page faults local, as the KMeans‖ parallel sampling
	// rounds would.
	InitSpan int64
	// BoundBytes caps each rank's pcache for the dataset vector
	// (MegaMmap variant only; 0 = unbounded).
	BoundBytes int64
	// CostPerDist is the modeled compute cost of one point-to-centroid
	// distance evaluation.
	CostPerDist vtime.Duration
}

// Defaults fills unset fields with the paper's parameters (k=8,
// max_iter=4).
func (c Config) Defaults() Config {
	if c.K == 0 {
		c.K = 8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 4
	}
	if c.CostPerDist == 0 {
		c.CostPerDist = 3 * vtime.Nanosecond
	}
	return c
}

// Result reports a run's output.
type Result struct {
	Centroids [][3]float64
	Inertia   float64
	Points    int64
}

// nearest returns the closest centroid index and squared distance for a
// particle position.
func nearest(pt datagen.Particle, centroids [][3]float64) (int, float64) {
	best, bestD := 0, math.MaxFloat64
	for c, ctr := range centroids {
		dx := float64(pt.X) - ctr[0]
		dy := float64(pt.Y) - ctr[1]
		dz := float64(pt.Z) - ctr[2]
		d := dx*dx + dy*dy + dz*dz
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// accumulate folds one particle into per-cluster position sums/counts.
// The buffer layout is [k*(x,y,z,count)] so it allreduces as one vector.
func accumulate(acc []float64, pt datagen.Particle, centroids [][3]float64) float64 {
	c, d := nearest(pt, centroids)
	acc[c*4+0] += float64(pt.X)
	acc[c*4+1] += float64(pt.Y)
	acc[c*4+2] += float64(pt.Z)
	acc[c*4+3]++
	return d
}

// recompute turns summed accumulators into new centroids, keeping the old
// centroid for empty clusters.
func recompute(acc []float64, old [][3]float64) [][3]float64 {
	out := make([][3]float64, len(old))
	for c := range out {
		n := acc[c*4+3]
		if n == 0 {
			out[c] = old[c]
			continue
		}
		out[c] = [3]float64{acc[c*4+0] / n, acc[c*4+1] / n, acc[c*4+2] / n}
	}
	return out
}

// initialCentroids deterministically oversamples the dataset at a seeded
// stride (the cheap, verification-friendly stand-in for the KMeans‖
// sampling rounds; both variants use it so they stay comparable).
func initialCentroids(k int, n int64, seed uint64, sample func(i int64) datagen.Particle) [][3]float64 {
	out := make([][3]float64, 0, k)
	if n == 0 {
		return make([][3]float64, k)
	}
	stride := n / int64(k)
	if stride == 0 {
		stride = 1
	}
	for c := 0; c < k; c++ {
		i := (int64(c)*stride + int64(seed%uint64(stride+1))) % n
		pt := sample(i)
		out = append(out, [3]float64{float64(pt.X), float64(pt.Y), float64(pt.Z)})
	}
	return out
}
