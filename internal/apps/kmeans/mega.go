package kmeans

import (
	"fmt"

	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/mpi"
	"megammap/internal/vtime"
)

const scanChunk = 1024

// Mega runs the MegaMmap variant on one rank. All ranks of the world call
// it; the returned result is identical on every rank.
func Mega(r *mpi.Rank, d *core.DSM, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	cl := d.NewClient(r.Proc(), r.Node().ID)
	pts, err := core.Open[datagen.Particle](cl, cfg.DatasetURL, datagen.ParticleCodec{})
	if err != nil {
		return Result{}, err
	}
	if cfg.BoundBytes > 0 {
		pts.BoundMemory(cfg.BoundBytes)
	}
	pts.Pgas(r.Rank(), r.Size())
	n := pts.Len()
	if n == 0 {
		return Result{}, fmt.Errorf("kmeans: dataset %s is empty", cfg.DatasetURL)
	}

	// Initial centroids: rank 0 samples, everyone receives.
	span := cfg.InitSpan
	if span <= 0 || span > n {
		span = n
	}
	var centroids [][3]float64
	if r.Rank() == 0 {
		pts.SeqTxBegin(0, span, core.ReadOnly|core.Global)
		centroids = initialCentroids(cfg.K, span, cfg.Seed, pts.Get)
		pts.TxEnd()
	}
	centroids = r.Bcast(0, centroids, int64(cfg.K)*24).([][3]float64)

	var inertia float64
	buf := make([]datagen.Particle, scanChunk)
	off, ln := pts.LocalOff(), pts.LocalLen()
	for it := 0; it < cfg.MaxIter; it++ {
		acc := make([]float64, cfg.K*4)
		local := 0.0
		pts.SeqTxBegin(off, ln, core.ReadOnly)
		for done := int64(0); done < ln; {
			m := int64(scanChunk)
			if m > ln-done {
				m = ln - done
			}
			pts.GetRange(off+done, buf[:m])
			for _, pt := range buf[:m] {
				local += accumulate(acc, pt, centroids)
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerDist) * m * int64(cfg.K)))
			done += m
		}
		pts.TxEnd()
		acc = append(acc, local)
		acc = r.SumFloat64s(acc)
		inertia = acc[len(acc)-1]
		centroids = recompute(acc[:len(acc)-1], centroids)
	}

	// Persist assignments through a nonvolatile shared vector.
	if cfg.AssignURL != "" {
		out, err := core.Open[int32](cl, cfg.AssignURL, core.Int32Codec{})
		if err != nil {
			return Result{}, err
		}
		if r.Rank() == 0 {
			out.Resize(n)
		}
		r.Barrier()
		out.SeqTxBegin(off, ln, core.WriteOnly)
		pts.SeqTxBegin(off, ln, core.ReadOnly)
		for done := int64(0); done < ln; {
			m := int64(scanChunk)
			if m > ln-done {
				m = ln - done
			}
			pts.GetRange(off+done, buf[:m])
			for j, pt := range buf[:m] {
				c, _ := nearest(pt, centroids)
				out.Set(off+done+int64(j), int32(c))
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerDist) * m * int64(cfg.K)))
			done += m
		}
		pts.TxEnd()
		out.TxEnd()
	}
	r.Barrier()
	return Result{Centroids: centroids, Inertia: inertia, Points: n}, nil
}
