package kmeans

import (
	"math"
	"sort"
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/device"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/sparklike"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  64 * device.MB,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(4 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
			{Name: "hdd", Profile: device.HDDProfile(256 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(4 * device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme", "hdd"}
	cfg.DefaultPageSize = 12 << 10 // multiple of 24-byte particles
	return cfg
}

// genDataset writes a clustered dataset and returns the generator (for
// ground truth) plus the dataset URL.
func genDataset(t *testing.T, c *cluster.Cluster, n, k int) (*datagen.Generator, string) {
	t.Helper()
	const url = "pq:///data/points.parquet:pos"
	g := datagen.New(datagen.DefaultSpec(n, k, 42))
	c.Engine.Spawn("datagen", func(p *vtime.Proc) {
		b, err := stager.New(c).Open(url)
		if err != nil {
			t.Error(err)
			return
		}
		if _, err := g.WriteTo(p, b, 0); err != nil {
			t.Error(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return g, url
}

// centroidsMatchHalos verifies each true halo center has a recovered
// centroid within tol.
func centroidsMatchHalos(t *testing.T, got [][3]float64, centers []datagen.Particle, tol float64) {
	t.Helper()
	for _, c := range centers {
		best := math.MaxFloat64
		for _, g := range got {
			dx := g[0] - float64(c.X)
			dy := g[1] - float64(c.Y)
			dz := g[2] - float64(c.Z)
			if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d < best {
				best = d
			}
		}
		if best > tol {
			t.Errorf("halo at (%.0f,%.0f,%.0f) has no centroid within %.1f (closest %.1f)",
				c.X, c.Y, c.Z, tol, best)
		}
	}
}

func TestMegaRecoversHalos(t *testing.T) {
	c := testCluster(2)
	g, url := genDataset(t, c, 6000, 4)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 4)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{DatasetURL: url, K: 4, MaxIter: 6, AssignURL: "file:///out/assign.bin"})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Points != 6000 {
		t.Errorf("points = %d", res.Points)
	}
	centroidsMatchHalos(t, res.Centroids, g.Centers(), 15)
	if got := c.PFSSize("/out/assign.bin"); got != 6000*4 {
		t.Errorf("assignments file = %d bytes, want %d", got, 6000*4)
	}
}

func TestMegaBoundedMemoryStillCorrect(t *testing.T) {
	c := testCluster(2)
	g, url := genDataset(t, c, 6000, 4)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 4)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{DatasetURL: url, K: 4, MaxIter: 6, BoundBytes: 24 << 10})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	centroidsMatchHalos(t, res.Centroids, g.Centers(), 15)
	if f, _, _ := d.Stats(); f == 0 {
		t.Error("expected faults/evictions under a 2-page bound")
	}
}

func TestSparkRecoversHalos(t *testing.T) {
	c := testCluster(2)
	g, url := genDataset(t, c, 6000, 4)
	s := sparklike.NewSession(c, sparklike.DefaultConfig())
	st := stager.New(c)
	var res Result
	c.Engine.Spawn("driver", func(p *vtime.Proc) {
		out, err := Spark(p, s, st, Config{DatasetURL: url, K: 4, MaxIter: 6})
		if err != nil {
			t.Error(err)
			return
		}
		res = out
		s.Close()
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	centroidsMatchHalos(t, res.Centroids, g.Centers(), 15)
}

func TestMegaAndSparkAgree(t *testing.T) {
	// Same dataset, same init, same math: centroid sets must be close.
	cMega := testCluster(2)
	_, url := genDataset(t, cMega, 4000, 3)
	d := core.New(cMega, coreConfig())
	w := mpi.NewWorld(cMega, 4)
	var mres Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{DatasetURL: url, K: 3, MaxIter: 5})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			mres = out
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	cSpark := testCluster(2)
	_, url2 := genDataset(t, cSpark, 4000, 3)
	s := sparklike.NewSession(cSpark, sparklike.DefaultConfig())
	var sres Result
	cSpark.Engine.Spawn("driver", func(p *vtime.Proc) {
		out, err := Spark(p, s, stager.New(cSpark), Config{DatasetURL: url2, K: 3, MaxIter: 5})
		if err != nil {
			t.Error(err)
			return
		}
		sres = out
	})
	if err := cSpark.Engine.Run(); err != nil {
		t.Fatal(err)
	}

	ms := flatten(mres.Centroids)
	ss := flatten(sres.Centroids)
	for i := range ms {
		if math.Abs(ms[i]-ss[i]) > 1.0 {
			t.Errorf("centroid coord %d differs: mega %.2f vs spark %.2f", i, ms[i], ss[i])
		}
	}
	if relErr := math.Abs(mres.Inertia-sres.Inertia) / mres.Inertia; relErr > 0.01 {
		t.Errorf("inertia differs: %.1f vs %.1f", mres.Inertia, sres.Inertia)
	}
}

func flatten(cs [][3]float64) []float64 {
	out := make([]float64, 0, len(cs)*3)
	for _, c := range cs {
		out = append(out, c[0], c[1], c[2])
	}
	sort.Float64s(out)
	return out
}

func TestSparkUsesMoreMemoryThanMega(t *testing.T) {
	// The paper's Fig. 5 observation: Spark's resident footprint is a
	// multiple of the dataset, MegaMmap's is bounded by pcache+scache.
	const n = 20000
	raw := int64(n * datagen.ParticleSize)

	cS := testCluster(1)
	_, urlS := genDataset(t, cS, n, 4)
	s := sparklike.NewSession(cS, sparklike.DefaultConfig())
	cS.Engine.Spawn("driver", func(p *vtime.Proc) {
		if _, err := Spark(p, s, stager.New(cS), Config{DatasetURL: urlS, K: 4, MaxIter: 2}); err != nil {
			t.Error(err)
		}
	})
	if err := cS.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	sparkPeak := cS.MaxDRAMPeak()

	cM := testCluster(1)
	_, urlM := genDataset(t, cM, n, 4)
	d := core.New(cM, coreConfig())
	w := mpi.NewWorld(cM, 2)
	err := w.Run(func(r *mpi.Rank) {
		if _, err := Mega(r, d, Config{DatasetURL: urlM, K: 4, MaxIter: 2, BoundBytes: raw / 4}); err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	megaPeak := cM.MaxDRAMPeak()
	if sparkPeak < 2*raw {
		t.Errorf("spark peak %d should be >= 2x dataset %d", sparkPeak, raw)
	}
	if megaPeak >= sparkPeak {
		t.Errorf("mega peak %d should undercut spark peak %d", megaPeak, sparkPeak)
	}
}

func TestDefaultsFillUnsetOnly(t *testing.T) {
	d := Config{}.Defaults()
	if d.K != 8 || d.MaxIter != 4 || d.CostPerDist != 3*vtime.Nanosecond {
		t.Errorf("zero-config defaults = %+v", d)
	}
	custom := Config{K: 3, MaxIter: 9, CostPerDist: vtime.Microsecond}.Defaults()
	if custom.K != 3 || custom.MaxIter != 9 || custom.CostPerDist != vtime.Microsecond {
		t.Errorf("defaults overwrote explicit values: %+v", custom)
	}
}
