package kmeans

import (
	"fmt"

	"megammap/internal/datagen"
	"megammap/internal/sparklike"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

// aggState is the per-partition accumulator shipped to the driver.
type aggState struct {
	acc     []float64
	inertia float64
}

// Spark runs the Spark-model baseline from the driver process. The
// session owns the executors; the stager resolves the dataset URL.
func Spark(p *vtime.Proc, s *sparklike.Session, st *stager.Stager, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	b, err := st.Open(cfg.DatasetURL)
	if err != nil {
		return Result{}, err
	}
	n := b.Size() / datagen.ParticleSize
	if n == 0 {
		return Result{}, fmt.Errorf("kmeans: dataset %s is empty", cfg.DatasetURL)
	}
	parts := s.Nodes() * 4
	rdd, err := sparklike.Load(p, s, b, datagen.ParticleSize, parts,
		decodeParticles, vtime.Nanosecond/2+1)
	if err != nil {
		return Result{}, err
	}

	// Initial centroids read directly by the driver.
	span := cfg.InitSpan
	if span <= 0 || span > n {
		span = n
	}
	centroids := initialCentroids(cfg.K, span, cfg.Seed, func(i int64) datagen.Particle {
		raw, rerr := b.ReadRange(p, 0, i*datagen.ParticleSize, datagen.ParticleSize)
		if rerr != nil || len(raw) < datagen.ParticleSize {
			return datagen.Particle{}
		}
		return datagen.DecodeParticle(raw)
	})

	var inertia float64
	for it := 0; it < cfg.MaxIter; it++ {
		ctr := centroids
		res, aerr := sparklike.Aggregate(p, rdd,
			func() aggState { return aggState{acc: make([]float64, cfg.K*4)} },
			func(a aggState, pt datagen.Particle) aggState {
				a.inertia += accumulate(a.acc, pt, ctr)
				return a
			},
			func(a, b aggState) aggState {
				for i := range a.acc {
					a.acc[i] += b.acc[i]
				}
				a.inertia += b.inertia
				return a
			},
			vtime.Duration(int64(cfg.CostPerDist)*int64(cfg.K)),
			int64(cfg.K*4*8))
		if aerr != nil {
			return Result{}, aerr
		}
		inertia = res.inertia
		centroids = recompute(res.acc, centroids)
		s.Broadcast(p, int64(cfg.K)*24)
	}

	// Assignment stage: per-partition classify + write to the backend
	// (Spark writes output partitions through the driver-side committer).
	if cfg.AssignURL != "" {
		ob, oerr := st.Open(cfg.AssignURL)
		if oerr != nil {
			return Result{}, oerr
		}
		ctr := centroids
		if _, aerr := sparklike.Aggregate(p, rdd,
			func() int64 { return 0 },
			func(acc int64, pt datagen.Particle) int64 {
				c, _ := nearest(pt, ctr)
				return acc + int64(c)
			},
			func(a, b int64) int64 { return a + b },
			vtime.Duration(int64(cfg.CostPerDist)*int64(cfg.K)),
			n*4/int64(parts)); aerr != nil {
			return Result{}, aerr
		}
		if werr := ob.WriteRange(p, 0, 0, make([]byte, n*4)); werr != nil {
			return Result{}, werr
		}
	}
	rdd.Unpersist()
	return Result{Centroids: centroids, Inertia: inertia, Points: n}, nil
}

func decodeParticles(raw []byte) []datagen.Particle {
	out := make([]datagen.Particle, len(raw)/datagen.ParticleSize)
	for i := range out {
		out[i] = datagen.DecodeParticle(raw[i*datagen.ParticleSize:])
	}
	return out
}
