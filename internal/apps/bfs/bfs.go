// Package bfs implements a level-synchronous breadth-first search over
// CSR graphs staged on the simulated PFS — the irregular workload of the
// scenario-plan study. Unlike the sequential-sweep apps (KMeans,
// Gray-Scott), a BFS level reads the adjacency of whichever vertices the
// previous level discovered: edge-array accesses are monotonic but gappy,
// so a sequential transaction's predicted access sequence is wrong almost
// immediately. That makes BFS the workload that needs UMap-style policy
// hints: declaring the edge vector irregular suppresses the wasted
// prefetch fills and mispredicted evictions the default policy issues.
package bfs

import "megammap/internal/vtime"

// Config parameterizes one run.
type Config struct {
	OffsetsURL string // CSR offsets array (int64, len V+1)
	EdgesURL   string // CSR edge-target array (int32)
	DistName   string // shared distance vector ("" = volatile "bfs:dist")
	Source     int64  // BFS root vertex
	MaxLevels  int    // safety cap on level count
	// BoundBytes caps each rank's pcache for the edge vector (0 =
	// unbounded). A bound below the edge working set is what makes the
	// default (sequential-prediction) policy hurt: wasted fills evict
	// pages the level still needs.
	BoundBytes int64
	// CostPerEdge is the modeled compute cost of relaxing one edge.
	CostPerEdge vtime.Duration
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.DistName == "" {
		c.DistName = "bfs:dist"
	}
	if c.MaxLevels == 0 {
		c.MaxLevels = 64
	}
	if c.CostPerEdge == 0 {
		c.CostPerEdge = 5 * vtime.Nanosecond
	}
	return c
}

// Result reports a run's output; identical on every rank.
type Result struct {
	Visited int64 // vertices reached (including the source)
	Levels  int64 // eccentricity of the source (max finite distance)
	SumDist int64 // sum of finite distances
	Digest  int64 // order-independent weighted digest of the distance array
}

// Stats folds a distance array (the host-side BFSFrom output or the
// shared vector's contents) into the Result digest fields, so tests can
// compare the MegaMmap run against ground truth field by field.
func Stats(dist []int32) Result {
	var res Result
	for i, d := range dist {
		res.fold(int64(i), d)
	}
	return res
}

// fold accumulates one vertex's distance into the digest.
func (r *Result) fold(i int64, d int32) {
	if d < 0 {
		return
	}
	r.Visited++
	r.SumDist += int64(d)
	if int64(d) > r.Levels {
		r.Levels = int64(d)
	}
	r.Digest += int64(d) * (i%8191 + 1)
}
