package bfs

import (
	"fmt"

	"megammap/internal/core"
	"megammap/internal/mpi"
	"megammap/internal/vtime"
)

const scanChunk = 1024

// Mega runs the MegaMmap BFS on one rank. All ranks of the world call it;
// the returned result is identical on every rank.
//
// The distance vector is block-partitioned (Pgas). Each rank keeps the
// frontier vertices it owns as a queue in discovery order (textbook BFS),
// reads their adjacency from the shared edge vector (read-only global),
// routes the discovered neighbours to their owning ranks with an
// alltoall, and the owners write distance updates locally; the vertices
// newly discovered become the rank's next frontier. Barriers between
// phases keep levels synchronous, and every loop walks slices in
// deterministic order, so runs replay bit-identically.
//
// Discovery order is what makes the workload irregular: consecutive
// adjacency reads jump around the edge array, so the sequential
// transaction declared over it mispredicts almost every access — the
// case for an irregular-pattern policy hint on the edge vector.
func Mega(r *mpi.Rank, d *core.DSM, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	cl := d.NewClient(r.Proc(), r.Node().ID)
	offs, err := core.Open[int64](cl, cfg.OffsetsURL, core.Int64Codec{})
	if err != nil {
		return Result{}, err
	}
	edges, err := core.Open[int32](cl, cfg.EdgesURL, core.Int32Codec{})
	if err != nil {
		return Result{}, err
	}
	if cfg.BoundBytes > 0 {
		edges.BoundMemory(cfg.BoundBytes)
	}
	v := offs.Len() - 1 // offsets has V+1 entries
	e := edges.Len()
	if v < 1 {
		return Result{}, fmt.Errorf("bfs: offsets %s is empty", cfg.OffsetsURL)
	}
	if cfg.Source < 0 || cfg.Source >= v {
		return Result{}, fmt.Errorf("bfs: source %d outside [0,%d)", cfg.Source, v)
	}

	dist, err := core.Open[int32](cl, cfg.DistName, core.Int32Codec{})
	if err != nil {
		return Result{}, err
	}
	if r.Rank() == 0 {
		dist.Resize(v)
	}
	r.Barrier()
	dist.Pgas(r.Rank(), r.Size())
	off, ln := dist.LocalOff(), dist.LocalLen()

	// Initialize distances: -1 everywhere, 0 at the source (owned by its
	// partition's rank).
	dist.SeqTxBegin(off, ln, core.WriteOnly)
	buf := make([]int32, scanChunk)
	for i := range buf {
		buf[i] = -1
	}
	for done := int64(0); done < ln; {
		m := min64(int64(scanChunk), ln-done)
		// The source's zero is patched into its chunk so the sweep never
		// revisits a page it already passed.
		lo := off + done
		if cfg.Source >= lo && cfg.Source < lo+m {
			buf[cfg.Source-lo] = 0
			dist.SetRange(lo, buf[:m])
			buf[cfg.Source-lo] = -1
		} else {
			dist.SetRange(lo, buf[:m])
		}
		done += m
	}
	dist.TxEnd()
	r.Barrier()

	var frontier []int64
	if cfg.Source >= off && cfg.Source < off+ln {
		frontier = []int64{cfg.Source}
	}
	nbuf := make([]int32, 0, 64)
	for level := int64(0); ; level++ {
		if level >= int64(cfg.MaxLevels) {
			return Result{}, fmt.Errorf("bfs: exceeded MaxLevels=%d", cfg.MaxLevels)
		}
		// Expand: read the frontier's adjacency in discovery order. The
		// offsets reads stay in my partition; the edge reads land wherever
		// the CSR layout puts each vertex's adjacency.
		var cands []int64
		if len(frontier) > 0 {
			seen := make(map[int64]struct{})
			olen := min64(ln+1, offs.Len()-off)
			offs.SeqTxBegin(off, olen, core.ReadOnly)
			edges.SeqTxBegin(0, e, core.ReadOnly|core.Global)
			for _, u := range frontier {
				o0, o1 := offs.Get(u), offs.Get(u+1)
				deg := o1 - o0
				if deg <= 0 {
					continue
				}
				if int64(cap(nbuf)) < deg {
					nbuf = make([]int32, deg)
				}
				edges.GetRange(o0, nbuf[:deg])
				for _, w := range nbuf[:deg] {
					if _, dup := seen[int64(w)]; !dup {
						seen[int64(w)] = struct{}{}
						cands = append(cands, int64(w))
					}
				}
				r.Compute(vtime.Duration(int64(cfg.CostPerEdge) * deg))
			}
			edges.TxEnd()
			offs.TxEnd()
		}

		// Route each candidate to its owner; owners apply updates locally
		// (read-modify-write of their own partition only) and keep the
		// newly discovered vertices, still in discovery order, as the next
		// frontier.
		mine := exchange(r, cands, v)
		var next []int64
		dist.SeqTxBegin(off, ln, core.ReadWrite)
		for _, w := range mine {
			if dist.Get(w) < 0 {
				dist.Set(w, int32(level+1))
				next = append(next, w)
			}
		}
		dist.TxEnd()
		if r.SumInt64(int64(len(next))) == 0 {
			break
		}
		frontier = next
		r.Barrier()
	}

	// Fold the distance array into the digest; every rank folds its own
	// partition, then the pieces sum.
	var res Result
	dist.SeqTxBegin(off, ln, core.ReadOnly)
	for done := int64(0); done < ln; {
		m := min64(int64(scanChunk), ln-done)
		dist.GetRange(off+done, buf[:m])
		for j, dv := range buf[:m] {
			res.fold(off+done+int64(j), dv)
		}
		done += m
	}
	dist.TxEnd()
	res.Visited = r.SumInt64(res.Visited)
	res.SumDist = r.SumInt64(res.SumDist)
	res.Digest = r.SumInt64(res.Digest)
	res.Levels = r.MaxInt64(res.Levels)
	r.Barrier()
	return res, nil
}

// exchange alltoall-routes candidate vertices to their owning ranks (the
// block partition Pgas assigns), preserving each sender's discovery
// order, and returns the deduplicated candidates owned by this rank
// (senders concatenated in rank order).
func exchange(r *mpi.Rank, cands []int64, v int64) []int64 {
	size := int64(r.Size())
	per, rem := v/size, v%size
	owner := func(w int64) int64 {
		if w < rem*(per+1) {
			return w / (per + 1)
		}
		return rem + (w-rem*(per+1))/per
	}
	outs := make([][]int64, size)
	for _, w := range cands {
		o := owner(w)
		outs[o] = append(outs[o], w)
	}
	contribs := make([]any, size)
	for i := range outs {
		contribs[i] = outs[i]
	}
	bytesEach := int64(8) * (int64(len(cands))/size + 1)
	var mine []int64
	seen := make(map[int64]struct{})
	for _, in := range r.Alltoall(contribs, bytesEach) {
		ws, ok := in.([]int64)
		if !ok {
			continue
		}
		for _, w := range ws {
			if _, dup := seen[w]; !dup {
				seen[w] = struct{}{}
				mine = append(mine, w)
			}
		}
	}
	return mine
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
