package bfs

import (
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/device"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

const (
	offsURL  = "file:///data/graph.offsets"
	edgesURL = "file:///data/graph.edges"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  64 * device.MB,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(4 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(4 * device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme"}
	cfg.DefaultPageSize = 4 << 10
	return cfg
}

// genGraph writes a CSR graph to the simulated PFS and returns it.
func genGraph(t *testing.T, c *cluster.Cluster, v int64) *datagen.Graph {
	t.Helper()
	g := datagen.NewGraph(datagen.DefaultGraphSpec(v, 42))
	c.Engine.Spawn("graphgen", func(p *vtime.Proc) {
		st := stager.New(c)
		ob, err := st.Open(offsURL)
		if err != nil {
			t.Error(err)
			return
		}
		eb, err := st.Open(edgesURL)
		if err != nil {
			t.Error(err)
			return
		}
		if err := g.WriteTo(p, ob, eb, 0); err != nil {
			t.Error(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return g
}

// runBFS executes one full BFS world and reports the result plus paging
// statistics and the finishing vtime.
func runBFS(t *testing.T, hints []core.VectorHint, bound int64, v int64) (Result, *core.DSM, vtime.Duration) {
	t.Helper()
	c := testCluster(2)
	genGraph(t, c, v)
	cc := coreConfig()
	cc.Hints = hints
	d := core.New(c, cc)
	w := mpi.NewWorld(c, 4)
	var res Result
	var end vtime.Duration
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{OffsetsURL: offsURL, EdgesURL: edgesURL, BoundBytes: bound})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			end = r.Proc().Now()
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, d, end
}

func TestMegaMatchesHostBFS(t *testing.T) {
	const v = 4096
	res, _, _ := runBFS(t, nil, 0, v)
	want := Stats(datagen.NewGraph(datagen.DefaultGraphSpec(v, 42)).BFSFrom(0))
	if res != want {
		t.Fatalf("mega result %+v differs from host BFS %+v", res, want)
	}
	if res.Visited != v {
		t.Fatalf("visited %d of %d", res.Visited, v)
	}
}

func TestMegaBoundedMatchesUnbounded(t *testing.T) {
	const v = 4096
	free, _, _ := runBFS(t, nil, 0, v)
	bound, d, _ := runBFS(t, nil, 16<<10, v)
	if free != bound {
		t.Fatalf("bounded run %+v differs from unbounded %+v", bound, free)
	}
	if f, _, _ := d.Stats(); f == 0 {
		t.Error("expected faults under a 4-page edge bound")
	}
}

// TestIrregularHintReducesWaste is the workload-level case for policy
// hints: the discovery-order frontier makes the sequential declaration
// over the edge vector mispredict nearly every access, so the default
// policy issues prefetch fills the level never consumes (wasted
// bandwidth) while real faults contend with them. Declaring the vector
// irregular must cut wasted fills, not increase faults, and lower the
// runtime — without changing the answer.
func TestIrregularHintReducesWaste(t *testing.T) {
	const v = 16384
	const bound = 128 << 10
	hint := []core.VectorHint{{Vector: edgesURL, Pattern: core.PatternIrregular}}

	off, dOff, tOff := runBFS(t, nil, bound, v)
	on, dOn, tOn := runBFS(t, hint, bound, v)

	if off != on {
		t.Fatalf("hint changed the answer: off %+v on %+v", off, on)
	}
	want := Stats(datagen.NewGraph(datagen.DefaultGraphSpec(v, 42)).BFSFrom(0))
	if on != want {
		t.Fatalf("result %+v differs from host BFS %+v", on, want)
	}

	_, wasteOff := dOff.PrefetchFillStats()
	_, wasteOn := dOn.PrefetchFillStats()
	fOff, _, _ := dOff.Stats()
	fOn, _, _ := dOn.Stats()
	if wasteOn >= wasteOff {
		t.Errorf("wasted fills: hint-on %d, hint-off %d (want a reduction)", wasteOn, wasteOff)
	}
	if fOn > fOff {
		t.Errorf("faults: hint-on %d, hint-off %d (want no increase)", fOn, fOff)
	}
	if tOn >= tOff {
		t.Errorf("runtime: hint-on %v, hint-off %v (want a speedup)", tOn, tOff)
	}
}

func TestMegaRejectsBadSource(t *testing.T) {
	c := testCluster(1)
	genGraph(t, c, 64)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 1)
	var got error
	if err := w.Run(func(r *mpi.Rank) {
		_, got = Mega(r, d, Config{OffsetsURL: offsURL, EdgesURL: edgesURL, Source: 64})
	}); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("expected an out-of-range source error")
	}
}
