package grayscott

import (
	"fmt"

	"megammap/internal/core"
	"megammap/internal/mpi"
	"megammap/internal/vtime"
)

// Mega runs the MegaMmap variant on one rank. The grid lives in two
// shared vectors (current and next); each rank's slab is its Pgas
// partition, halo planes arrive transparently through the DSM, and
// checkpoints write a nonvolatile vector whose pages the active staging
// engine persists in the background, overlapping the next compute phase.
func Mega(r *mpi.Rank, d *core.DSM, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	L := cfg.L
	n := int64(L) * int64(L) * int64(L)
	plane := int64(L) * int64(L)
	cl := d.NewClient(r.Proc(), r.Node().ID)

	open := func(name string, floor func(pageSize int64) int64) (*core.Vector[Cell], error) {
		v, err := core.Open[Cell](cl, name, CellCodec{})
		if err != nil {
			return nil, err
		}
		if cfg.BoundBytes > 0 {
			// BoundMemory is app-chosen (paper Listing 1): a bound below
			// the kernel's working set thrashes every access, so the
			// request is floored per vector role.
			bound := cfg.BoundBytes
			if f := floor(v.PageSize()); bound < f {
				bound = f
			}
			v.BoundMemory(bound)
		}
		return v, nil
	}
	// The read grid's instantaneous working set is the active row windows
	// of three Z-planes: three whole (small) planes, or a handful of
	// pages once planes span many pages.
	readFloor := func(ps int64) int64 {
		f := 3*plane*CellSize + 2*ps
		if cap := 8 * ps; f > cap {
			f = cap
		}
		return f
	}
	// Write-only vectors stream: two pages of write window suffice.
	writeFloor := func(ps int64) int64 { return 2 * ps }

	cur, err := open(fmt.Sprintf("gs%d/a", L), readFloor)
	if err != nil {
		return Result{}, err
	}
	next, err := open(fmt.Sprintf("gs%d/b", L), readFloor)
	if err != nil {
		return Result{}, err
	}
	var ckpt *core.Vector[Cell]
	if cfg.PlotGap > 0 && cfg.CkptURL != "" {
		if ckpt, err = open(cfg.CkptURL, writeFloor); err != nil {
			return Result{}, err
		}
	}
	if r.Rank() == 0 {
		cur.Resize(n)
		next.Resize(n)
		if ckpt != nil {
			ckpt.Resize(n)
		}
	}
	r.Barrier()

	z0, z1 := slab(L, r.Rank(), r.Size())
	lo, hi := int64(z0)*plane, int64(z1)*plane

	// Initialize the local slab.
	row := make([]Cell, L)
	cur.SeqTxBegin(lo, hi-lo, core.WriteOnly)
	for z := z0; z < z1; z++ {
		for y := 0; y < L; y++ {
			for x := 0; x < L; x++ {
				row[x] = initCell(L, x, y, z)
			}
			cur.SetRange(rowOff(L, y, z), row)
		}
	}
	cur.TxEnd()
	r.Barrier()

	rows := newRowBufs(L)
	ckpts := 0
	for step := 0; step < cfg.Steps; step++ {
		// Read window includes one halo plane each side when present.
		rlo, rhi := lo, hi
		if z0 > 0 {
			rlo -= plane
		}
		if z1 < L {
			rhi += plane
		}
		cur.SeqTxBegin(rlo, rhi-rlo, core.ReadOnly|core.Global)
		next.SeqTxBegin(lo, hi-lo, core.WriteOnly)
		for z := z0; z < z1; z++ {
			zm, zp := clamp(z-1, L), clamp(z+1, L)
			for y := 0; y < L; y++ {
				ym, yp := clamp(y-1, L), clamp(y+1, L)
				cur.GetRange(rowOff(L, y, z), rows.center)
				cur.GetRange(rowOff(L, ym, z), rows.ym)
				cur.GetRange(rowOff(L, yp, z), rows.yp)
				cur.GetRange(rowOff(L, y, zm), rows.zm)
				cur.GetRange(rowOff(L, y, zp), rows.zp)
				cfg.stepRow(rows.dst, rows.center, rows.ym, rows.yp, rows.zm, rows.zp)
				next.SetRange(rowOff(L, y, z), rows.dst)
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerCell) * plane))
		}
		cur.TxEnd()
		next.TxEnd()
		r.Barrier()
		cur, next = next, cur

		if cfg.PlotGap > 0 && (step+1)%cfg.PlotGap == 0 && ckpt != nil {
			// Checkpoint: copy the local slab into the nonvolatile vector.
			// Commits are asynchronous and the staging engine persists them
			// in the background while the next step computes.
			cur.SeqTxBegin(lo, hi-lo, core.ReadOnly)
			ckpt.SeqTxBegin(lo, hi-lo, core.WriteOnly)
			for off := lo; off < hi; off += int64(L) {
				cur.GetRange(off, row)
				ckpt.SetRange(off, row)
			}
			cur.TxEnd()
			ckpt.TxEnd()
			ckpts++
		}
	}

	// Verification checksum over the local slab, reduced across ranks.
	var sum float64
	cur.SeqTxBegin(lo, hi-lo, core.ReadOnly)
	for off := lo; off < hi; off += int64(L) {
		cur.GetRange(off, row)
		for _, c := range row {
			sum += c.U + c.V
		}
	}
	cur.TxEnd()
	sum = r.SumFloat64(sum)
	r.Barrier()
	return Result{Checksum: sum, GridBytes: n * CellSize, Checkpoints: ckpts}, nil
}

type rowBufs struct {
	center, ym, yp, zm, zp, dst []Cell
}

func newRowBufs(L int) *rowBufs {
	return &rowBufs{
		center: make([]Cell, L), ym: make([]Cell, L), yp: make([]Cell, L),
		zm: make([]Cell, L), zp: make([]Cell, L), dst: make([]Cell, L),
	}
}

func rowOff(L, y, z int) int64 {
	return (int64(z)*int64(L) + int64(y)) * int64(L)
}

func clamp(v, L int) int {
	if v < 0 {
		return 0
	}
	if v >= L {
		return L - 1
	}
	return v
}
