package grayscott

import (
	"fmt"

	"megammap/internal/mpi"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

// MPI runs the message-passing variant on one rank: node-local slab
// buffers (subject to the OOM killer), explicit halo plane exchanges, and
// synchronous checkpoint I/O to the parallel filesystem — the classic
// compute/I-O phase separation MegaMmap removes.
func MPI(r *mpi.Rank, st *stager.Stager, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	L := cfg.L
	plane := int64(L) * int64(L)
	n := plane * int64(L)
	z0, z1 := slab(L, r.Rank(), r.Size())
	slabPlanes := z1 - z0
	slabCells := int64(slabPlanes) * plane

	// Two grid copies plus two halo planes, allocated from physical DRAM.
	// Past the paper's L=2688 analog this is what the OOM killer ends.
	allocBytes := (2*slabCells + 2*plane) * CellSize
	if err := r.Node().Alloc(allocBytes); err != nil {
		return Result{}, fmt.Errorf("grayscott: %w", err)
	}
	defer r.Node().Free(allocBytes)

	curSlab := make([]Cell, slabCells)
	nextSlab := make([]Cell, slabCells)
	haloLo := make([]Cell, plane) // plane z0-1 from the rank below
	haloHi := make([]Cell, plane) // plane z1 from the rank above

	var ck stager.Backend
	if cfg.PlotGap > 0 && cfg.CkptURL != "" {
		var err error
		if ck, err = st.Open(cfg.CkptURL); err != nil {
			return Result{}, err
		}
	}

	at := func(z, y int) int64 { return (int64(z-z0)*int64(L) + int64(y)) * int64(L) }
	for z := z0; z < z1; z++ {
		for y := 0; y < L; y++ {
			base := at(z, y)
			for x := 0; x < L; x++ {
				curSlab[base+int64(x)] = initCell(L, x, y, z)
			}
		}
	}
	r.Barrier()

	rowAt := func(z, y int) []Cell {
		switch {
		case z < z0:
			return haloLo[int64(y)*int64(L) : (int64(y)+1)*int64(L)]
		case z >= z1:
			return haloHi[int64(y)*int64(L) : (int64(y)+1)*int64(L)]
		default:
			return curSlab[at(z, y) : at(z, y)+int64(L)]
		}
	}

	ckpts := 0
	haloBytes := plane * CellSize
	for step := 0; step < cfg.Steps; step++ {
		// Halo exchange with Z neighbors. Even ranks send first so the
		// eager transport drains deterministically.
		if r.Rank() > 0 {
			down := make([]Cell, plane)
			copy(down, curSlab[:plane])
			r.Send(r.Rank()-1, 100+step, down, haloBytes)
		}
		if r.Rank() < r.Size()-1 {
			up := make([]Cell, plane)
			copy(up, curSlab[slabCells-plane:])
			r.Send(r.Rank()+1, 200+step, up, haloBytes)
		}
		if r.Rank() < r.Size()-1 {
			v, _ := r.Recv(r.Rank()+1, 100+step)
			copy(haloHi, v.([]Cell))
		}
		if r.Rank() > 0 {
			v, _ := r.Recv(r.Rank()-1, 200+step)
			copy(haloLo, v.([]Cell))
		}

		for z := z0; z < z1; z++ {
			zm, zp := clamp(z-1, L), clamp(z+1, L)
			for y := 0; y < L; y++ {
				ym, yp := clamp(y-1, L), clamp(y+1, L)
				cfg.stepRow(nextSlab[at(z, y):at(z, y)+int64(L)],
					rowAt(z, y), rowAt(z, ym), rowAt(z, yp), rowAt(zm, y), rowAt(zp, y))
			}
			r.Compute(vtime.Duration(int64(cfg.CostPerCell) * plane))
		}
		r.Barrier()
		curSlab, nextSlab = nextSlab, curSlab

		if cfg.PlotGap > 0 && (step+1)%cfg.PlotGap == 0 && ck != nil {
			// Synchronous checkpoint: serialize the slab and write it to
			// the PFS before the next step may begin (the I/O phase).
			buf := make([]byte, slabCells*CellSize)
			for i, c := range curSlab {
				(CellCodec{}).Encode(buf[i*CellSize:], c)
			}
			if err := ck.WriteRange(r.Proc(), r.Node().ID, int64(z0)*plane*CellSize, buf); err != nil {
				return Result{}, err
			}
			ckpts++
			r.Barrier()
		}
	}

	var sum float64
	for z := z0; z < z1; z++ {
		for y := 0; y < L; y++ {
			for _, c := range rowAt(z, y) {
				sum += c.U + c.V
			}
		}
	}
	sum = r.SumFloat64(sum)
	r.Barrier()
	return Result{Checksum: sum, GridBytes: n * CellSize, Checkpoints: ckpts}, nil
}
