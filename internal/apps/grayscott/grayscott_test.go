package grayscott

import (
	"math"
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/device"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/stager"
)

func testCluster(nodes int, dram int64) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  dram,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(2 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
			{Name: "hdd", Profile: device.HDDProfile(256 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(4 * device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme", "hdd"}
	cfg.DefaultPageSize = 16 << 10
	return cfg
}

func runMega(t *testing.T, nodes, ranks int, cfg Config) (Result, *cluster.Cluster) {
	t.Helper()
	c := testCluster(nodes, 64*device.MB)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, ranks)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, c
}

func runMPI(t *testing.T, nodes, ranks int, dram int64, cfg Config) (Result, error) {
	t.Helper()
	c := testCluster(nodes, dram)
	w := mpi.NewWorld(c, ranks)
	st := stager.New(c)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := MPI(r, st, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
		}
	})
	return res, err
}

func TestMegaMatchesMPIExactly(t *testing.T) {
	cfg := Config{L: 20, Steps: 4}
	mega, _ := runMega(t, 2, 4, cfg)
	mpiRes, err := runMPI(t, 2, 4, 64*device.MB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if mega.Checksum == 0 || mpiRes.Checksum == 0 {
		t.Fatal("zero checksum: simulation did not run")
	}
	if diff := math.Abs(mega.Checksum - mpiRes.Checksum); diff > 1e-6 {
		t.Errorf("checksums differ: mega %.9f vs mpi %.9f (diff %g)",
			mega.Checksum, mpiRes.Checksum, diff)
	}
}

func TestReactionEvolves(t *testing.T) {
	cfg := Config{L: 16, Steps: 3}
	r1, _ := runMega(t, 1, 2, cfg)
	cfg2 := Config{L: 16, Steps: 6}
	r2, _ := runMega(t, 1, 2, cfg2)
	if r1.Checksum == r2.Checksum {
		t.Error("checksum identical after more steps; reaction is not evolving")
	}
	// U starts near 1 everywhere; total mass stays within sane bounds.
	n := float64(16 * 16 * 16)
	if r1.Checksum < 0.2*n || r1.Checksum > 3*n {
		t.Errorf("checksum %.1f outside sane bounds for %v cells", r1.Checksum, n)
	}
}

func TestMegaCheckpointPersists(t *testing.T) {
	cfg := Config{L: 16, Steps: 4, PlotGap: 2, CkptURL: "file:///ckpt/gs.bin"}
	res, c := runMega(t, 2, 4, cfg)
	if res.Checkpoints != 2 {
		t.Errorf("checkpoints = %d, want 2", res.Checkpoints)
	}
	want := int64(16*16*16) * CellSize
	if got := c.PFSSize("/ckpt/gs.bin"); got != want {
		t.Errorf("checkpoint file = %d bytes, want %d", got, want)
	}
}

func TestMPICheckpointPersists(t *testing.T) {
	cfg := Config{L: 16, Steps: 4, PlotGap: 2, CkptURL: "file:///ckpt/gs-mpi.bin"}
	c := testCluster(2, 64*device.MB)
	w := mpi.NewWorld(c, 4)
	st := stager.New(c)
	err := w.Run(func(r *mpi.Rank) {
		res, err := MPI(r, st, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		if res.Checkpoints != 2 {
			t.Errorf("checkpoints = %d, want 2", res.Checkpoints)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := int64(16*16*16) * CellSize
	if got := c.PFSSize("/ckpt/gs-mpi.bin"); got != want {
		t.Errorf("checkpoint file = %d bytes, want %d", got, want)
	}
}

func TestMPIOOMsWhenGridExceedsDRAM(t *testing.T) {
	// 32^3 cells * 16B * 2 copies = 1MB over 1 rank; give the node 512KB.
	cfg := Config{L: 32, Steps: 1}
	_, err := runMPI(t, 1, 1, 512*device.KB, cfg)
	if err == nil {
		t.Fatal("expected OOM failure")
	}
	var oom *cluster.ErrOOM
	if !errorsAs(err, &oom) {
		t.Errorf("error %v is not an OOM", err)
	}
}

func TestMegaSurvivesWhereMPIOOMs(t *testing.T) {
	// Same 512KB node: MegaMmap bounds its pcache and spills to NVMe.
	cfg := Config{L: 32, Steps: 2, BoundBytes: 128 * device.KB}
	c := testCluster(1, 512*device.KB)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 1)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		res = out
		_ = d.Shutdown(r.Proc())
	})
	if err != nil {
		t.Fatalf("MegaMmap should survive the memory-constrained node: %v", err)
	}
	if res.Checksum == 0 {
		t.Error("no result")
	}
}

func TestSlabPartition(t *testing.T) {
	total := 0
	prev := 0
	for r := 0; r < 5; r++ {
		z0, z1 := slab(17, r, 5)
		if z0 != prev {
			t.Errorf("rank %d starts at %d, want %d (contiguous)", r, z0, prev)
		}
		total += z1 - z0
		prev = z1
	}
	if total != 17 {
		t.Errorf("slabs cover %d planes, want 17", total)
	}
}

func TestBoundedMegaMatchesUnbounded(t *testing.T) {
	cfg := Config{L: 20, Steps: 3}
	free, _ := runMega(t, 1, 2, cfg)
	cfgB := cfg
	cfgB.BoundBytes = 64 * device.KB // force heavy eviction
	bounded, _ := runMega(t, 1, 2, cfgB)
	if diff := math.Abs(free.Checksum - bounded.Checksum); diff > 1e-6 {
		t.Errorf("bounded run diverged: %.9f vs %.9f", bounded.Checksum, free.Checksum)
	}
}

// errorsAs is a tiny local alias to keep the test imports tidy.
func errorsAs(err error, target any) bool {
	type causer interface{ Unwrap() error }
	for err != nil {
		if oom, ok := err.(*cluster.ErrOOM); ok {
			*(target.(**cluster.ErrOOM)) = oom
			return true
		}
		u, ok := err.(causer)
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}
