// Package grayscott implements the paper's Gray-Scott 3-D
// reaction-diffusion workload: a grid of (U,V) chemical concentrations
// updated with a 7-point stencil, partitioned into Z-slabs across ranks,
// exchanging halo planes each step and checkpointing the grid every
// plotgap steps. Two variants share identical numerics: a MegaMmap
// implementation (the grid lives in shared vectors; halos arrive through
// the DSM; checkpoints persist through the nonvolatile staging path) and
// an MPI implementation (node-local slabs, explicit halo messages,
// synchronous checkpoint I/O) whose allocations are subject to the OOM
// killer — the paper's Fig. 6 failure mode.
package grayscott

import (
	"encoding/binary"
	"math"

	"megammap/internal/vtime"
)

// Cell holds the two chemical concentrations of one grid point.
type Cell struct {
	U, V float64
}

// CellSize is the encoded cell size in bytes.
const CellSize = 16

// CellCodec encodes cells for MegaMmap vectors.
type CellCodec struct{}

// Size implements core.Codec.
func (CellCodec) Size() int { return CellSize }

// Encode implements core.Codec.
func (CellCodec) Encode(dst []byte, c Cell) {
	binary.LittleEndian.PutUint64(dst, math.Float64bits(c.U))
	binary.LittleEndian.PutUint64(dst[8:], math.Float64bits(c.V))
}

// Decode implements core.Codec.
func (CellCodec) Decode(src []byte) Cell {
	return Cell{
		U: math.Float64frombits(binary.LittleEndian.Uint64(src)),
		V: math.Float64frombits(binary.LittleEndian.Uint64(src[8:])),
	}
}

// Config parameterizes a simulation.
type Config struct {
	L       int // grid side; the grid is L^3 cells
	Steps   int
	PlotGap int // checkpoint every PlotGap steps (0 = never)

	// Reaction parameters (the classic Pearson values by default).
	F, K, Du, Dv, Dt float64

	CkptURL string // checkpoint destination (nonvolatile)
	// BoundBytes caps each rank's pcache per grid vector (MegaMmap).
	BoundBytes int64
	// CostPerCell is the modeled compute cost of one stencil update.
	CostPerCell vtime.Duration
}

// Defaults fills unset reaction parameters.
func (c Config) Defaults() Config {
	if c.F == 0 {
		c.F = 0.04
	}
	if c.K == 0 {
		c.K = 0.06
	}
	if c.Du == 0 {
		c.Du = 0.2
	}
	if c.Dv == 0 {
		c.Dv = 0.1
	}
	if c.Dt == 0 {
		c.Dt = 1.0
	}
	if c.CostPerCell == 0 {
		c.CostPerCell = 12 * vtime.Nanosecond
	}
	return c
}

// Result reports a run.
type Result struct {
	// Checksum is the sum of all U plus V at the end (verification).
	Checksum float64
	// GridBytes is the dataset size of one grid copy.
	GridBytes int64
	// Checkpoints counts grid checkpoints taken.
	Checkpoints int
}

// slab returns rank r's Z-plane range [z0, z1) for an L-deep grid over
// size ranks.
func slab(L, r, size int) (z0, z1 int) {
	per := L / size
	rem := L % size
	z0 = r*per + min(r, rem)
	z1 = z0 + per
	if r < rem {
		z1++
	}
	return z0, z1
}

// initCell returns the initial condition at (x,y,z): U=1,V=0 everywhere
// except a seeded cube in the grid center.
func initCell(L, x, y, z int) Cell {
	lo, hi := L/2-L/8, L/2+L/8
	if x >= lo && x < hi && y >= lo && y < hi && z >= lo && z < hi {
		return Cell{U: 0.5, V: 0.25}
	}
	return Cell{U: 1, V: 0}
}

// react computes one cell update from its 7-point neighborhood.
func (c Config) react(center, xm, xp, ym, yp, zm, zp Cell) Cell {
	lapU := xm.U + xp.U + ym.U + yp.U + zm.U + zp.U - 6*center.U
	lapV := xm.V + xp.V + ym.V + yp.V + zm.V + zp.V - 6*center.V
	uvv := center.U * center.V * center.V
	return Cell{
		U: center.U + c.Dt*(c.Du*lapU-uvv+c.F*(1-center.U)),
		V: center.V + c.Dt*(c.Dv*lapV+uvv-(c.F+c.K)*center.V),
	}
}

// stepRow updates one X-row using the five neighbor rows. Edges clamp to
// the boundary (zero-flux walls), matching both variants exactly.
func (c Config) stepRow(dst, center, ym, yp, zm, zp []Cell) {
	L := len(center)
	for x := 0; x < L; x++ {
		xm, xp := x-1, x+1
		if xm < 0 {
			xm = 0
		}
		if xp >= L {
			xp = L - 1
		}
		dst[x] = c.react(center[x], center[xm], center[xp], ym[x], yp[x], zm[x], zp[x])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
