package rf

import (
	"math"
	"math/rand"

	"megammap/internal/datagen"
	"megammap/internal/sparklike"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

// Spark runs the Spark-model baseline from the driver: features and
// labels load as RDDs, each partition bags its subsample, and every tree
// level is one aggregation job computing the frontier histograms
// (the MLlib level-wise induction shape).
func Spark(p *vtime.Proc, s *sparklike.Session, st *stager.Stager, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	fb, err := st.Open(cfg.DatasetURL)
	if err != nil {
		return Result{}, err
	}
	lb, err := st.Open(cfg.LabelURL)
	if err != nil {
		return Result{}, err
	}
	parts := s.Nodes() * 4
	ptsRDD, err := sparklike.Load(p, s, fb, datagen.ParticleSize, parts, decodeParticles, vtime.Nanosecond/2+1)
	if err != nil {
		return Result{}, err
	}
	labRDD, err := sparklike.Load(p, s, lb, 4, parts, decodeLabels, vtime.Nanosecond/2+1)
	if err != nil {
		return Result{}, err
	}

	// Zip + bag: every partition samples its share with a seeded rng.
	// The bag materializes as a new RDD (another copy, as Spark would).
	bagParts, testPts, testLabels := bagPartitions(p, ptsRDD, labRDD, cfg)
	bagRDD, err := sparklike.Parallelize(p, s, bagParts, datagen.ParticleSize+4)
	if err != nil {
		return Result{}, err
	}
	ptsRDD.Unpersist()
	labRDD.Unpersist()

	// Global feature ranges in one aggregation.
	ranges, err := sparkRanges(p, bagRDD, cfg)
	if err != nil {
		return Result{}, err
	}

	var bagN int64
	for _, bp := range bagParts {
		bagN += int64(len(bp))
	}
	var aggErr error
	buildTree := func(cfg Config) *Tree {
		return growTree(cfg, ranges, func(t *Tree, frontier, feats []int) ([]float64, []float64) {
			blk := histSize(cfg.Classes, cfg.Bins, len(feats))
			fmap := make(map[int]int, len(frontier))
			for i, id := range frontier {
				fmap[id] = i
			}
			type histAgg struct{ hists, totals []float64 }
			zero := func() histAgg {
				return histAgg{
					hists:  make([]float64, blk*len(frontier)),
					totals: make([]float64, cfg.Classes*len(frontier)),
				}
			}
			res, err := sparklike.Aggregate(p, bagRDD, zero,
				func(a histAgg, smp sample) histAgg {
					pos := route(t, &smp, fmap)
					if pos < 0 {
						return a
					}
					a.totals[pos*cfg.Classes+int(smp.label)]++
					for fi, feat := range feats {
						b := binOf(feature(smp.pt, feat), ranges[0][feat], ranges[1][feat], cfg.Bins)
						a.hists[pos*blk+(fi*cfg.Bins+b)*cfg.Classes+int(smp.label)]++
					}
					return a
				},
				func(a, b histAgg) histAgg {
					for i := range a.hists {
						a.hists[i] += b.hists[i]
					}
					for i := range a.totals {
						a.totals[i] += b.totals[i]
					}
					return a
				},
				cfg.CostPerSample, int64(8*(blk+cfg.Classes)*len(frontier)))
			if err != nil && aggErr == nil {
				aggErr = err
			}
			s.Broadcast(p, int64(len(frontier))*32) // split decisions per level
			return res.hists, res.totals
		})
	}
	var trees []*Tree
	for tr := 0; tr < cfg.NumTrees; tr++ {
		treeCfg := cfg
		treeCfg.Seed = cfg.Seed + uint64(tr)*31
		trees = append(trees, buildTree(treeCfg))
	}
	if aggErr != nil {
		return Result{}, aggErr
	}
	bagRDD.Unpersist()

	acc := accuracyOver(trees, cfg.Classes, testPts, testLabels)
	return Result{Tree: trees[0], Trees: trees, Accuracy: acc, BagSize: int(bagN)}, nil
}

// bagPartitions zips features+labels per partition and draws the bag,
// splitting off the driver-held test set.
func bagPartitions(p *vtime.Proc, pts *sparklike.RDD[datagen.Particle], labs *sparklike.RDD[int32],
	cfg Config) ([][]sample, []datagen.Particle, []int32) {
	nparts := pts.Parts()
	bags := make([][]sample, nparts)
	var testPts []datagen.Particle
	var testLabels []int32
	for i := 0; i < nparts; i++ {
		pp := pts.Part(i)
		lp := labs.Part(i)
		rng := rand.New(rand.NewSource(int64(cfg.Seed) + int64(i)))
		take := len(pp) / cfg.OOB
		if take < 2 {
			take = 2
		}
		for j := 0; j < take; j++ {
			idx := rng.Intn(len(pp))
			smp := sample{pt: pp[idx], label: lp[idx]}
			if cfg.TestFraction > 0 && j%cfg.TestFraction == 0 {
				testPts = append(testPts, smp.pt)
				testLabels = append(testLabels, smp.label)
			} else {
				bags[i] = append(bags[i], smp)
			}
		}
	}
	return bags, testPts, testLabels
}

// sparkRanges computes global per-feature min/max with one aggregation.
func sparkRanges(p *vtime.Proc, bag *sparklike.RDD[sample], cfg Config) ([2][NumFeatures]float64, error) {
	type mm struct{ lo, hi [NumFeatures]float64 }
	zero := func() mm {
		var m mm
		for f := range m.lo {
			m.lo[f], m.hi[f] = math.MaxFloat64, -math.MaxFloat64
		}
		return m
	}
	res, err := sparklike.Aggregate(p, bag, zero,
		func(a mm, s sample) mm {
			for f := 0; f < NumFeatures; f++ {
				v := feature(s.pt, f)
				if v < a.lo[f] {
					a.lo[f] = v
				}
				if v > a.hi[f] {
					a.hi[f] = v
				}
			}
			return a
		},
		func(a, b mm) mm {
			for f := 0; f < NumFeatures; f++ {
				a.lo[f] = math.Min(a.lo[f], b.lo[f])
				a.hi[f] = math.Max(a.hi[f], b.hi[f])
			}
			return a
		},
		cfg.CostPerSample/4, NumFeatures*16)
	var out [2][NumFeatures]float64
	if err != nil {
		return out, err
	}
	out[0], out[1] = res.lo, res.hi
	return out, nil
}

func decodeParticles(raw []byte) []datagen.Particle {
	out := make([]datagen.Particle, len(raw)/datagen.ParticleSize)
	for i := range out {
		out[i] = datagen.DecodeParticle(raw[i*datagen.ParticleSize:])
	}
	return out
}

func decodeLabels(raw []byte) []int32 {
	out := make([]int32, len(raw)/4)
	for i := range out {
		out[i] = int32(raw[i*4]) | int32(raw[i*4+1])<<8 | int32(raw[i*4+2])<<16 | int32(raw[i*4+3])<<24
	}
	return out
}
