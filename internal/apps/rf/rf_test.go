package rf

import (
	"math"
	"testing"

	"megammap/internal/cluster"
	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/device"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/sparklike"
	"megammap/internal/stager"
	"megammap/internal/vtime"
)

func testCluster(nodes int) *cluster.Cluster {
	return cluster.New(cluster.Spec{
		Nodes:    nodes,
		CoresPer: 8,
		DRAMPer:  64 * device.MB,
		Tiers: []cluster.TierSpec{
			{Name: "dram", Profile: device.DRAMProfile(4 * device.MB)},
			{Name: "nvme", Profile: device.NVMeProfile(32 * device.MB)},
			{Name: "hdd", Profile: device.HDDProfile(256 * device.MB)},
		},
		Link: simnet.RoCE40(),
		PFS:  device.PFSProfile(4 * device.GB),
	})
}

func coreConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Tiers = []string{"dram", "nvme", "hdd"}
	cfg.DefaultPageSize = 12 << 10
	return cfg
}

// genLabeled writes a clustered dataset plus true halo labels.
func genLabeled(t *testing.T, c *cluster.Cluster, n, k int) (ptsURL, labURL string) {
	t.Helper()
	ptsURL, labURL = "pq:///data/rf.parquet:pts", "file:///data/rf.labels"
	g := datagen.New(datagen.DefaultSpec(n, k, 42))
	c.Engine.Spawn("datagen", func(p *vtime.Proc) {
		st := stager.New(c)
		pb, err := st.Open(ptsURL)
		if err != nil {
			t.Error(err)
			return
		}
		labels, err := g.WriteTo(p, pb, 0)
		if err != nil {
			t.Error(err)
			return
		}
		raw := make([]byte, len(labels)*4)
		for i, l := range labels {
			raw[i*4] = byte(l)
			raw[i*4+1] = byte(l >> 8)
			raw[i*4+2] = byte(l >> 16)
			raw[i*4+3] = byte(l >> 24)
		}
		lb, err := st.Open(labURL)
		if err != nil {
			t.Error(err)
			return
		}
		if err := lb.WriteRange(p, 0, 0, raw); err != nil {
			t.Error(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	return ptsURL, labURL
}

func TestTreeMechanics(t *testing.T) {
	tr := &Tree{Nodes: []Node{
		{Feature: 0, Thresh: 10, Left: 1, Right: 2},
		{Leaf: true, Label: 1, Left: -1, Right: -1},
		{Leaf: true, Label: 2, Left: -1, Right: -1},
	}}
	if got := tr.Predict(datagen.Particle{X: 5}); got != 1 {
		t.Errorf("left predict = %d", got)
	}
	if got := tr.Predict(datagen.Particle{X: 15}); got != 2 {
		t.Errorf("right predict = %d", got)
	}
	if tr.Depth() != 1 {
		t.Errorf("depth = %d", tr.Depth())
	}
}

func TestGiniAndBestSplit(t *testing.T) {
	if g := gini([]float64{10, 0}); g != 0 {
		t.Errorf("pure gini = %f", g)
	}
	if g := gini([]float64{5, 5}); math.Abs(g-0.5) > 1e-12 {
		t.Errorf("even gini = %f", g)
	}
	// A perfectly separable histogram: class 0 in bin 0, class 1 in bin 7.
	classes, bins := 2, 8
	hist := make([]float64, classes*bins)
	hist[0*classes+0] = 10 // bin 0, class 0
	hist[7*classes+1] = 10 // bin 7, class 1
	f, b, gain := bestSplit(hist, classes, bins, 1, []float64{10, 10})
	if f != 0 || b < 0 || gain < 0.49 {
		t.Errorf("bestSplit = %d,%d,%f; want feature 0 with ~0.5 gain", f, b, gain)
	}
}

func TestBinOf(t *testing.T) {
	if binOf(0, 0, 10, 8) != 0 || binOf(10, 0, 10, 8) != 7 || binOf(5, 0, 10, 8) != 4 {
		t.Error("binOf boundaries wrong")
	}
	if binOf(5, 5, 5, 8) != 0 {
		t.Error("degenerate range should map to bin 0")
	}
	if binOf(-100, 0, 10, 8) != 0 || binOf(100, 0, 10, 8) != 7 {
		t.Error("out-of-range values must clamp")
	}
}

func TestMegaLearnsHalos(t *testing.T) {
	c := testCluster(2)
	ptsURL, labURL := genLabeled(t, c, 8000, 4)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 4)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{
			DatasetURL: ptsURL, LabelURL: labURL, Classes: 4, MaxDepth: 10, Seed: 3,
		})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil || len(res.Tree.Nodes) < 3 {
		t.Fatal("tree did not grow")
	}
	if res.Tree.Depth() > 10 {
		t.Errorf("depth %d exceeds max 10", res.Tree.Depth())
	}
	// 4 well-separated halos: far better than the 25% chance level.
	if res.Accuracy < 0.8 {
		t.Errorf("accuracy = %.2f, want >= 0.8", res.Accuracy)
	}
}

func TestMegaBounded(t *testing.T) {
	c := testCluster(2)
	ptsURL, labURL := genLabeled(t, c, 8000, 4)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 4)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{
			DatasetURL: ptsURL, LabelURL: labURL, Classes: 4, Seed: 3,
			BoundBytes: 36 << 10,
		})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.8 {
		t.Errorf("bounded accuracy = %.2f, want >= 0.8", res.Accuracy)
	}
	if f, _, _ := d.Stats(); f == 0 {
		t.Error("expected page faults under a tight bound")
	}
}

func TestSparkLearnsHalos(t *testing.T) {
	c := testCluster(2)
	ptsURL, labURL := genLabeled(t, c, 8000, 4)
	s := sparklike.NewSession(c, sparklike.DefaultConfig())
	st := stager.New(c)
	var res Result
	c.Engine.Spawn("driver", func(p *vtime.Proc) {
		out, err := Spark(p, s, st, Config{
			DatasetURL: ptsURL, LabelURL: labURL, Classes: 4, Seed: 3,
		})
		if err != nil {
			t.Error(err)
			return
		}
		res = out
		s.Close()
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
	if res.Accuracy < 0.8 {
		t.Errorf("spark accuracy = %.2f, want >= 0.8", res.Accuracy)
	}
	if res.BagSize == 0 {
		t.Error("empty bag")
	}
}

func TestFeatureSubsetDeterministic(t *testing.T) {
	// All ranks derive the same subsets from the shared seed.
	a := growTreeInputs(3)
	b := growTreeInputs(3)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("feature subsets are not deterministic")
		}
	}
}

func growTreeInputs(seed int64) []int {
	rng := newRNG(seed)
	var out []int
	for i := 0; i < 5; i++ {
		out = append(out, featureSubset(rng, 3)...)
	}
	return out
}

func TestForestMajorityVote(t *testing.T) {
	// Three stumps: two vote class 1, one votes class 2.
	stump := func(label int32) *Tree {
		return &Tree{Nodes: []Node{{Leaf: true, Label: label, Left: -1, Right: -1}}}
	}
	trees := []*Tree{stump(1), stump(2), stump(1)}
	if got := forestPredict(trees, 4, datagen.Particle{}); got != 1 {
		t.Errorf("vote = %d, want 1", got)
	}
	if got := forestPredict(trees[:1], 4, datagen.Particle{}); got != 1 {
		t.Errorf("single tree fast path = %d", got)
	}
}

func TestMegaForest(t *testing.T) {
	c := testCluster(2)
	ptsURL, labURL := genLabeled(t, c, 8000, 4)
	d := core.New(c, coreConfig())
	w := mpi.NewWorld(c, 4)
	var res Result
	err := w.Run(func(r *mpi.Rank) {
		out, err := Mega(r, d, Config{
			DatasetURL: ptsURL, LabelURL: labURL, Classes: 4, Seed: 3, NumTrees: 3,
		})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			res = out
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trees) != 3 {
		t.Fatalf("forest size = %d, want 3", len(res.Trees))
	}
	if res.Trees[0] == res.Trees[1] {
		t.Error("forest trees are not distinct objects")
	}
	if res.Accuracy < 0.8 {
		t.Errorf("forest accuracy = %.2f, want >= 0.8", res.Accuracy)
	}
}
