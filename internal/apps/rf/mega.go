package rf

import (
	"math"
	"sort"

	"megammap/internal/core"
	"megammap/internal/datagen"
	"megammap/internal/mpi"
	"megammap/internal/vtime"
)

// Mega runs the MegaMmap variant on one rank. Every rank draws its bag
// through seeded random transactions over the shared dataset and label
// vectors, computes local split histograms, and allreduces them; all
// ranks therefore grow the identical tree.
func Mega(r *mpi.Rank, d *core.DSM, cfg Config) (Result, error) {
	cfg = cfg.Defaults()
	cl := d.NewClient(r.Proc(), r.Node().ID)
	pts, err := core.Open[datagen.Particle](cl, cfg.DatasetURL, datagen.ParticleCodec{})
	if err != nil {
		return Result{}, err
	}
	labels, err := core.Open[int32](cl, cfg.LabelURL, core.Int32Codec{})
	if err != nil {
		return Result{}, err
	}
	if cfg.BoundBytes > 0 {
		pts.BoundMemory(cfg.BoundBytes)
		labels.BoundMemory(cfg.BoundBytes / 6)
	}
	n := pts.Len()

	// Global feature ranges from each rank's partition.
	pts.Pgas(r.Rank(), r.Size())
	lo, hi := localRanges(r, pts, cfg)
	var ranges [2][NumFeatures]float64
	lows := r.AllreduceFloat64s(lo[:], math.Min)
	highs := r.AllreduceFloat64s(hi[:], math.Max)
	copy(ranges[0][:], lows)
	copy(ranges[1][:], highs)

	// Out-of-order bagging: bagSize seeded random draws per rank per
	// tree. The permutation seed is shared with the prefetcher via RandTx.
	bagSize := int(n) / (cfg.OOB * r.Size())
	if bagSize < 2 {
		bagSize = 2
	}
	var trees []*Tree
	var testPts []datagen.Particle
	var testLabels []int32
	bagTotal := 0
	for tr := 0; tr < cfg.NumTrees; tr++ {
		seed := cfg.Seed + uint64(r.Rank())*7919 + uint64(tr)*104729
		treeCfg := cfg
		treeCfg.Seed = cfg.Seed + uint64(tr)*31 // shared split-feature seed
		if tr > 0 {
			treeCfg.TestFraction = 0 // the held-out set comes from tree 0
		}
		train, tp, tl := drawBag(r, pts, labels, pts.LocalOff(), pts.LocalLen(), bagSize, seed, treeCfg)
		if tr == 0 {
			testPts, testLabels = tp, tl
		}
		bagTotal += len(train)
		tree := growTree(treeCfg, ranges, func(t *Tree, frontier, feats []int) ([]float64, []float64) {
			return megaHist(r, treeCfg, train, t, frontier, feats, ranges)
		})
		trees = append(trees, tree)
	}

	// Held-out accuracy of the forest vote, reduced across ranks.
	hit, tot := 0.0, float64(len(testPts))
	for i, pt := range testPts {
		if forestPredict(trees, cfg.Classes, pt) == testLabels[i] {
			hit++
		}
	}
	r.Compute(vtime.Duration(int64(cfg.CostPerSample) * int64(len(testPts)) * int64(cfg.NumTrees)))
	sums := r.SumFloat64s([]float64{hit, tot})
	r.Barrier()
	acc := math.NaN()
	if sums[1] > 0 {
		acc = sums[0] / sums[1]
	}
	return Result{Tree: trees[0], Trees: trees, Accuracy: acc, BagSize: bagTotal}, nil
}

// localRanges scans the rank's partition for per-feature min/max.
func localRanges(r *mpi.Rank, pts *core.Vector[datagen.Particle], cfg Config) (lo, hi [NumFeatures]float64) {
	for f := range lo {
		lo[f], hi[f] = math.MaxFloat64, -math.MaxFloat64
	}
	off, ln := pts.LocalOff(), pts.LocalLen()
	buf := make([]datagen.Particle, 1024)
	pts.SeqTxBegin(off, ln, core.ReadOnly)
	for done := int64(0); done < ln; {
		m := int64(len(buf))
		if m > ln-done {
			m = ln - done
		}
		pts.GetRange(off+done, buf[:m])
		for _, pt := range buf[:m] {
			for f := 0; f < NumFeatures; f++ {
				v := feature(pt, f)
				if v < lo[f] {
					lo[f] = v
				}
				if v > hi[f] {
					hi[f] = v
				}
			}
		}
		r.Compute(vtime.Duration(int64(cfg.CostPerSample) * m / 4))
		done += m
	}
	pts.TxEnd()
	return lo, hi
}

// drawBag reads bagSize seeded-random samples from the rank's partition,
// splitting off the test set. Sampling within the partition mirrors the
// per-partition bagging of the Spark baseline (partitions are themselves
// random subsets, so the bag's statistics are unchanged) and keeps the
// random faults rank-local. The draws are fetched in sorted index order —
// the standard out-of-core bagging technique — so each page is read at
// most once, sequentially, and the prefetcher can run ahead of the scan.
func drawBag(r *mpi.Rank, pts *core.Vector[datagen.Particle], labels *core.Vector[int32],
	off, n int64, bagSize int, seed uint64, cfg Config) ([]sample, []datagen.Particle, []int32) {
	// Enumerate the seeded permutation without touching data; ord keeps
	// the draw order so the test/train split is independent of the sort.
	perm := core.RandTx{Off: off, N: n, Seed: seed}
	type draw struct {
		idx int64
		ord int
	}
	draws := make([]draw, bagSize)
	for i := range draws {
		draws[i] = draw{idx: perm.ElemAt(int64(i)), ord: i}
	}
	if !cfg.UnsortedBag {
		sort.Slice(draws, func(a, b int) bool { return draws[a].idx < draws[b].idx })
	}

	var train []sample
	var testPts []datagen.Particle
	var testLabels []int32
	pts.SeqTxBegin(off, n, core.ReadOnly)
	labels.SeqTxBegin(off, n, core.ReadOnly)
	for k, d := range draws {
		pt := pts.Get(d.idx)
		lb := labels.Get(d.idx)
		if cfg.TestFraction > 0 && d.ord%cfg.TestFraction == 0 {
			testPts = append(testPts, pt)
			testLabels = append(testLabels, lb)
		} else {
			train = append(train, sample{pt: pt, label: lb})
		}
		// Charge compute inside the loop so asynchronous fills overlap it.
		if k%64 == 63 {
			r.Compute(vtime.Duration(int64(cfg.CostPerSample) * 64))
		}
	}
	labels.TxEnd()
	pts.TxEnd()
	return train, testPts, testLabels
}

// megaHist computes this rank's histogram contribution for the frontier
// and allreduces it.
func megaHist(r *mpi.Rank, cfg Config, train []sample, tree *Tree,
	frontier []int, feats []int, ranges [2][NumFeatures]float64) ([]float64, []float64) {
	blk := histSize(cfg.Classes, cfg.Bins, len(feats))
	hists := make([]float64, blk*len(frontier))
	totals := make([]float64, cfg.Classes*len(frontier))
	fmap := make(map[int]int, len(frontier))
	for i, id := range frontier {
		fmap[id] = i
	}
	for si := range train {
		s := &train[si]
		pos := route(tree, s, fmap)
		if pos < 0 {
			continue
		}
		totals[pos*cfg.Classes+int(s.label)]++
		for fi, feat := range feats {
			b := binOf(feature(s.pt, feat), ranges[0][feat], ranges[1][feat], cfg.Bins)
			hists[pos*blk+(fi*cfg.Bins+b)*cfg.Classes+int(s.label)]++
		}
	}
	r.Compute(vtime.Duration(int64(cfg.CostPerSample) * int64(len(train))))
	all := r.SumFloat64s(append(hists, totals...))
	return all[:len(hists)], all[len(hists):]
}
