// Package rf implements the paper's Random Forest workload: out-of-order
// bagging over a particle dataset with a labeled target, level-wise
// decision-tree induction from distributed Gini-impurity histograms, and
// a held-out accuracy evaluation. The MegaMmap variant draws each rank's
// bag through a seeded random transaction (RandTx) — the access pattern
// whose seed the prefetcher exploits — while the Spark-model variant
// computes the same histograms with per-partition aggregations.
package rf

import (
	"math"
	"math/rand"

	"megammap/internal/datagen"
	"megammap/internal/vtime"
)

// NumFeatures is the feature dimensionality (position + velocity).
const NumFeatures = 6

// feature extracts feature f of a particle.
func feature(pt datagen.Particle, f int) float64 {
	switch f {
	case 0:
		return float64(pt.X)
	case 1:
		return float64(pt.Y)
	case 2:
		return float64(pt.Z)
	case 3:
		return float64(pt.VX)
	case 4:
		return float64(pt.VY)
	default:
		return float64(pt.VZ)
	}
}

// Config parameterizes a run.
type Config struct {
	DatasetURL string // particle features
	LabelURL   string // int32 class labels, same length
	Classes    int
	MaxDepth   int
	// OOB is the out-of-order bagging divisor: each rank samples
	// N/(OOB*p) points with replacement.
	OOB  int
	Seed uint64
	// NumTrees is the forest size; prediction is a majority vote. The
	// paper's evaluation uses one tree.
	NumTrees int
	// Bins is the number of candidate split thresholds per feature.
	Bins int
	// FeaturesPerSplit is the random feature-subset size per node.
	FeaturesPerSplit int
	// BoundBytes caps the dataset vector's pcache (MegaMmap variant).
	BoundBytes int64
	// CostPerSample is the modeled compute per sample per histogram pass.
	CostPerSample vtime.Duration
	// TestFraction holds out every 1/TestFraction-th sample.
	TestFraction int
	// UnsortedBag fetches bag samples in raw permutation order instead of
	// sorted index order (ablation of the out-of-core bagging scan; see
	// DESIGN.md — raw order pays one page fetch per sample).
	UnsortedBag bool
}

// Defaults fills unset fields with the paper's parameters (max_depth=10,
// one tree).
func (c Config) Defaults() Config {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.OOB == 0 {
		c.OOB = 4
	}
	if c.Bins == 0 {
		c.Bins = 8
	}
	if c.FeaturesPerSplit == 0 {
		c.FeaturesPerSplit = 3
	}
	if c.CostPerSample == 0 {
		c.CostPerSample = 20 * vtime.Nanosecond
	}
	if c.TestFraction == 0 {
		c.TestFraction = 5
	}
	if c.Classes == 0 {
		c.Classes = 8
	}
	if c.NumTrees == 0 {
		c.NumTrees = 1
	}
	return c
}

// Result reports a trained forest and its held-out accuracy.
type Result struct {
	// Tree is the first tree (the paper's single-tree configuration).
	Tree *Tree
	// Trees is the whole forest.
	Trees    []*Tree
	Accuracy float64
	BagSize  int
}

// Forest votes are majority class over the trees.
func forestPredict(trees []*Tree, classes int, pt datagen.Particle) int32 {
	if len(trees) == 1 {
		return trees[0].Predict(pt)
	}
	votes := make([]int, classes)
	for _, tr := range trees {
		if c := tr.Predict(pt); int(c) < classes {
			votes[c]++
		}
	}
	best, bestN := 0, -1
	for c, n := range votes {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return int32(best)
}

// Tree is a binary decision tree in array form.
type Tree struct {
	Nodes []Node
}

// Node is one tree node; leaves carry Label, internal nodes split on
// Feature < Thresh (left) vs >= (right).
type Node struct {
	Feature     int
	Thresh      float64
	Left, Right int // child indices; -1 for leaves
	Label       int32
	Leaf        bool
}

// Predict classifies one sample.
func (t *Tree) Predict(pt datagen.Particle) int32 {
	i := 0
	for {
		n := t.Nodes[i]
		if n.Leaf {
			return n.Label
		}
		if feature(pt, n.Feature) < n.Thresh {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// Depth returns the tree depth.
func (t *Tree) Depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		n := t.Nodes[i]
		if n.Leaf {
			return d
		}
		l, r := walk(n.Left, d+1), walk(n.Right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.Nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}

// sample is one bagged training point.
type sample struct {
	pt    datagen.Particle
	label int32
	node  int // current tree node during level-wise induction
}

// histKey dimensions the split-search histogram: classes x bins x 2
// (left/right of threshold is derived from cumulative bins).
func histSize(classes, bins, feats int) int { return classes * bins * feats }

// binOf maps a feature value to a bin given global [min,max].
func binOf(v, lo, hi float64, bins int) int {
	if hi <= lo {
		return 0
	}
	b := int((v - lo) / (hi - lo) * float64(bins))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

// bestSplit scans a node's histogram (features x bins x classes) and
// returns the (featureIdx, bin, gain) of the best Gini split, or gain<=0
// when no split helps.
func bestSplit(hist []float64, classes, bins, feats int, total []float64) (int, int, float64) {
	parent := gini(total)
	n := sum(total)
	bestF, bestB, bestGain := -1, -1, 0.0
	for f := 0; f < feats; f++ {
		left := make([]float64, classes)
		for b := 0; b < bins-1; b++ {
			for cl := 0; cl < classes; cl++ {
				left[cl] += hist[(f*bins+b)*classes+cl]
			}
			nl := sum(left)
			nr := n - nl
			if nl == 0 || nr == 0 {
				continue
			}
			right := make([]float64, classes)
			for cl := 0; cl < classes; cl++ {
				right[cl] = total[cl] - left[cl]
			}
			gain := parent - (nl/n)*gini(left) - (nr/n)*gini(right)
			if gain > bestGain {
				bestF, bestB, bestGain = f, b, gain
			}
		}
	}
	return bestF, bestB, bestGain
}

func gini(counts []float64) float64 {
	n := sum(counts)
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

func sum(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

func majority(counts []float64) int32 {
	best, bestN := 0, -1.0
	for c, n := range counts {
		if n > bestN {
			best, bestN = c, n
		}
	}
	return int32(best)
}

// featureSubset picks FeaturesPerSplit distinct features from a seeded
// generator shared by all ranks (same subset everywhere).
func featureSubset(rng *rand.Rand, k int) []int {
	perm := rng.Perm(NumFeatures)
	return perm[:k]
}

// minEntropyGain is the stopping threshold on Gini gain.
const minEntropyGain = 1e-4

// growTree runs level-wise induction. histFn computes, for the current
// frontier of the in-progress tree, the concatenated histograms (one
// block per frontier node: feats x bins x classes) plus per-node class
// totals; it is where the two variants differ (DSM scan + allreduce vs
// RDD aggregation). ranges[f] carries the global [min,max] per feature.
func growTree(cfg Config, ranges [2][NumFeatures]float64,
	histFn func(tree *Tree, frontier []int, feats []int) ([]float64, []float64)) *Tree {
	rng := rand.New(rand.NewSource(int64(cfg.Seed) + 17))
	tree := &Tree{Nodes: []Node{{Left: -1, Right: -1}}}
	frontier := []int{0}
	for depth := 0; depth < cfg.MaxDepth && len(frontier) > 0; depth++ {
		feats := featureSubset(rng, cfg.FeaturesPerSplit)
		hists, totals := histFn(tree, frontier, feats)
		blk := histSize(cfg.Classes, cfg.Bins, len(feats))
		var next []int
		for fi, nodeID := range frontier {
			hist := hists[fi*blk : (fi+1)*blk]
			total := totals[fi*cfg.Classes : (fi+1)*cfg.Classes]
			f, b, gain := bestSplit(hist, cfg.Classes, cfg.Bins, len(feats), total)
			if f < 0 || gain < minEntropyGain || sum(total) < 2 {
				tree.Nodes[nodeID].Leaf = true
				tree.Nodes[nodeID].Label = majority(total)
				continue
			}
			feat := feats[f]
			lo, hi := ranges[0][feat], ranges[1][feat]
			thresh := lo + (hi-lo)*float64(b+1)/float64(cfg.Bins)
			l := len(tree.Nodes)
			tree.Nodes = append(tree.Nodes,
				Node{Left: -1, Right: -1}, Node{Left: -1, Right: -1})
			tree.Nodes[nodeID].Feature = feat
			tree.Nodes[nodeID].Thresh = thresh
			tree.Nodes[nodeID].Left = l
			tree.Nodes[nodeID].Right = l + 1
			next = append(next, l, l+1)
		}
		frontier = next
	}
	// Anything still open at max depth becomes a leaf labeled by its
	// majority class, computed in one final histogram pass.
	if len(frontier) > 0 {
		_, totals := histFn(tree, frontier, []int{0})
		for fi, nodeID := range frontier {
			total := totals[fi*cfg.Classes : (fi+1)*cfg.Classes]
			tree.Nodes[nodeID].Leaf = true
			tree.Nodes[nodeID].Label = majority(total)
		}
	}
	return tree
}

// route advances a sample to its frontier node (or -1 when it fell into a
// leaf already).
func route(tree *Tree, s *sample, frontier map[int]int) int {
	i := 0
	for {
		n := tree.Nodes[i]
		if n.Leaf {
			return -1
		}
		if pos, ok := frontier[i]; ok {
			return pos
		}
		if n.Left < 0 {
			return -1
		}
		if feature(s.pt, n.Feature) < n.Thresh {
			i = n.Left
		} else {
			i = n.Right
		}
	}
}

// accuracyOver evaluates a forest against labeled samples.
func accuracyOver(trees []*Tree, classes int, pts []datagen.Particle, labels []int32) float64 {
	if len(pts) == 0 {
		return math.NaN()
	}
	hit := 0
	for i, pt := range pts {
		if forestPredict(trees, classes, pt) == labels[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(pts))
}

// newRNG returns the deterministic generator used for shared random
// decisions (feature subsets).
func newRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
