// Package megammap's benchmark harness regenerates every table and
// figure of the paper's evaluation as testing.B benchmarks, plus the
// ablation studies of DESIGN.md's design choices. Reported metrics are
// virtual-time results from the deterministic simulation; host ns/op
// only reflects how fast the simulator itself runs.
//
//	go test -bench=. -benchmem
//
// Each benchmark runs the Small profile (the same shapes as the paper at
// laptop scale); use cmd/mmbench -profile full for the paper-faithful
// sweep sizes.
package megammap_test

import (
	"strconv"
	"testing"

	"megammap"
	"megammap/internal/experiments"
	"megammap/internal/stats"
)

// reportTable surfaces headline cells of an experiment as benchmark
// metrics so regressions in the reproduced shapes are visible in bench
// output.
func reportTable(b *testing.B, tb *stats.Table, metric func(t *stats.Table) map[string]float64) {
	b.Helper()
	for name, v := range metric(tb) {
		b.ReportMetric(v, name)
	}
}

func cell(tb *stats.Table, row int, col string) float64 {
	v, _ := strconv.ParseFloat(tb.Cell(row, col), 64)
	return v
}

// BenchmarkFig4LOC regenerates the paper's Fig. 4 code-volume table.
func BenchmarkFig4LOC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, tb, func(t *stats.Table) map[string]float64 {
				out := map[string]float64{}
				for r := 0; r < t.Len(); r++ {
					out[t.Cell(r, "app")+"_mega_loc"] = cell(t, r, "megammap_loc")
				}
				return out
			})
		}
	}
}

// BenchmarkFig5WeakScaling regenerates the paper's Fig. 5 weak-scaling
// study (all four apps, MegaMmap vs Spark-model/MPI).
func BenchmarkFig5WeakScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig5(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, tb, func(t *stats.Table) map[string]float64 {
				out := map[string]float64{}
				for r := 0; r < t.Len(); r++ {
					key := t.Cell(r, "app") + "_" + t.Cell(r, "variant") + "_n" + t.Cell(r, "nodes") + "_s"
					out[key] = cell(t, r, "runtime_s")
				}
				return out
			})
		}
	}
}

// BenchmarkFig6Resolution regenerates the paper's Fig. 6 resolution
// study (Gray-Scott grid sweep; MPI OOMs, MegaMmap continues).
func BenchmarkFig6Resolution(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig6(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			oom := 0.0
			for r := 0; r < tb.Len(); r++ {
				if tb.Cell(r, "status") == "OOM" {
					oom++
				}
			}
			b.ReportMetric(oom, "mpi_oom_points")
		}
	}
}

// BenchmarkFig7Tiering regenerates the paper's Fig. 7 DMSH tiering and
// cost study.
func BenchmarkFig7Tiering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig7(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, tb, func(t *stats.Table) map[string]float64 {
				out := map[string]float64{}
				for r := 0; r < t.Len(); r++ {
					out[t.Cell(r, "config")+"_s"] = cell(t, r, "runtime_s")
				}
				return out
			})
		}
	}
}

// BenchmarkFig8MemScaling regenerates the paper's Fig. 8 DRAM-scaling
// study for all four applications.
func BenchmarkFig8MemScaling(b *testing.B) {
	prof := experiments.Small()
	prof.Fig8Fracs = []float64{1, 0.5, 0.125}
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Fig8(prof)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportTable(b, tb, func(t *stats.Table) map[string]float64 {
				out := map[string]float64{}
				for r := 0; r < t.Len(); r++ {
					key := t.Cell(r, "app") + "_frac" + t.Cell(r, "dram_frac") + "_s"
					out[key] = cell(t, r, "runtime_s")
				}
				return out
			})
		}
	}
}

// BenchmarkAblationPrefetch isolates the transaction-informed prefetcher.
func BenchmarkAblationPrefetch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationPrefetch(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(tb, 0, "runtime_s"), "prefetch_on_s")
			b.ReportMetric(cell(tb, 1, "runtime_s"), "prefetch_off_s")
		}
	}
}

// BenchmarkAblationWorkerSplit isolates the low/high-latency worker
// split.
func BenchmarkAblationWorkerSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationWorkerSplit(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(tb, 0, "runtime_s"), "split_on_s")
			b.ReportMetric(cell(tb, 1, "runtime_s"), "split_off_s")
		}
	}
}

// BenchmarkAblationPartialPaging isolates dirty-region commits vs
// whole-page commits.
func BenchmarkAblationPartialPaging(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationPartialPaging(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(tb, 0, "scache_write_mb"), "partial_write_mb")
			b.ReportMetric(cell(tb, 1, "scache_write_mb"), "wholepage_write_mb")
		}
	}
}

// BenchmarkAblationPageSize sweeps the configurable page size.
func BenchmarkAblationPageSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationPageSize(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for r := 0; r < tb.Len(); r++ {
				b.ReportMetric(cell(tb, r, "runtime_s"), "page"+tb.Cell(r, "page_kb")+"k_s")
			}
		}
	}
}

// BenchmarkAblationCoherence isolates read-only global replication.
func BenchmarkAblationCoherence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationCoherence(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(tb, 0, "net_bytes_mb"), "replication_net_mb")
			b.ReportMetric(cell(tb, 1, "net_bytes_mb"), "noreplication_net_mb")
		}
	}
}

// BenchmarkAblationBagOrder isolates sorted-index bagging in RF.
func BenchmarkAblationBagOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tb, err := experiments.AblationBagOrder(experiments.Small())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cell(tb, 0, "runtime_s"), "sorted_s")
			b.ReportMetric(cell(tb, 1, "runtime_s"), "raw_order_s")
		}
	}
}

// BenchmarkIndexingOverhead measures the paper's §III-E claim — reading
// through a MegaMmap vector adds only integer operations and a
// conditional over a plain array access (~5% in an iterative workload) —
// as host-time ns/op of a fully resident sequential scan versus the same
// scan over a native slice. (All other benchmarks report virtual time;
// this one is about real per-access overhead of the library path, so the
// scan runs inside the engine with prefetching off and everything
// resident: no faults, no tasks, just the indexing fast path.)
func BenchmarkIndexingOverhead(b *testing.B) {
	const n = 1 << 16
	cfg := megammap.DefaultConfig()
	cfg.DisablePrefetch = true
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, cfg)
	var v *megammap.Vector[int64]
	c.Engine.Spawn("setup", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ = megammap.Open[int64](cl, "bench", megammap.Int64Codec{})
		v.Resize(n)
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i)
		}
		v.TxEnd()
	})
	if err := c.Engine.Run(); err != nil {
		b.Fatal(err)
	}

	// inEngine runs fn as one engine process and blocks until done.
	inEngine := func(fn func(p *megammap.Proc)) {
		c.Engine.Spawn("bench", fn)
		if err := c.Engine.Run(); err != nil {
			b.Fatal(err)
		}
	}

	native := make([]int64, n)
	for i := range native {
		native[i] = int64(i)
	}
	b.Run("native-slice", func(b *testing.B) {
		var sum int64
		for i := 0; i < b.N; i++ {
			for j := 0; j < n; j++ {
				sum += native[j]
			}
		}
		sinkInt64 = sum
	})
	b.Run("vector-get", func(b *testing.B) {
		inEngine(func(p *megammap.Proc) {
			var sum int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := int64(0); j < n; j++ {
					sum += v.Get(j)
				}
			}
			b.StopTimer()
			sinkInt64 = sum
		})
	})
	b.Run("vector-getrange", func(b *testing.B) {
		inEngine(func(p *megammap.Proc) {
			buf := make([]int64, 512)
			var sum int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := int64(0); j < n; j += 512 {
					v.GetRange(j, buf)
					for _, x := range buf {
						sum += x
					}
				}
			}
			b.StopTimer()
			sinkInt64 = sum
		})
	})
}

var sinkInt64 int64
