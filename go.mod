module megammap

go 1.24
