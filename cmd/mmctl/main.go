// Command mmctl works with MegaMmap deployment files (the paper's YAML
// configuration interface):
//
//	mmctl validate configs/example.yaml        parse and print the deployment
//	mmctl smoke configs/example.yaml           run a write/read smoke workload
//	mmctl trace configs/example.yaml out.json  run a traced KMeans workload and
//	                                           emit Chrome trace-event JSON
package main

import (
	"fmt"
	"os"

	"megammap"
)

func main() {
	if len(os.Args) < 3 {
		fmt.Fprintln(os.Stderr, "usage: mmctl {validate|smoke|trace} <deployment.yaml> [trace-out.json]")
		os.Exit(2)
	}
	raw, err := os.ReadFile(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmctl:", err)
		os.Exit(1)
	}
	d, err := megammap.LoadDeployment(string(raw))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmctl:", err)
		os.Exit(1)
	}
	switch os.Args[1] {
	case "validate":
		printDeployment(d)
	case "smoke":
		printDeployment(d)
		if err := smoke(d); err != nil {
			fmt.Fprintln(os.Stderr, "mmctl: smoke:", err)
			os.Exit(1)
		}
	case "trace":
		out := "trace.json"
		if len(os.Args) > 3 {
			out = os.Args[3]
		}
		if err := trace(d, out); err != nil {
			fmt.Fprintln(os.Stderr, "mmctl: trace:", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "mmctl: unknown command %q\n", os.Args[1])
		os.Exit(2)
	}
}

func printDeployment(d *megammap.Deployment) {
	fmt.Printf("cluster: %d nodes x %d cores, %dMB DRAM/node, link %s, PFS %dGB\n",
		d.Cluster.Nodes, d.Cluster.CoresPer, d.Cluster.DRAMPer>>20,
		d.Cluster.Link.Name, d.Cluster.PFS.Capacity>>30)
	for _, tier := range d.Cluster.Tiers {
		fmt.Printf("  tier %-5s %6dMB  %.1fGB/s read, score %.2f\n",
			tier.Name, tier.Profile.Capacity>>20, tier.Profile.ReadBW/1e9, tier.Profile.Score)
	}
	fmt.Printf("runtime: tiers %v, %dKB pages, workers %d+%d, organize %v/%dKB, stage %v, replicas %d, checksums %v\n",
		d.Runtime.Tiers, d.Runtime.DefaultPageSize>>10,
		d.Runtime.WorkersLowLat, d.Runtime.WorkersHighLat,
		d.Runtime.OrganizePeriod, d.Runtime.OrganizeBudget>>10,
		d.Runtime.StagePeriod, d.Runtime.Replicas, d.Runtime.ChecksumPages)
}

func smoke(dep *megammap.Deployment) error {
	c, d := dep.Build()
	ranks := dep.Cluster.Nodes * 2
	w := megammap.NewWorld(c, ranks)
	const n = 1 << 15
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		v, err := megammap.Open[int64](cl, "file:///smoke/data.bin", megammap.Int64Codec{})
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			v.Resize(n)
		}
		cl.Barrier("sized", r.Size())
		v.Pgas(r.Rank(), r.Size())
		off, ln := v.LocalOff(), v.LocalLen()
		v.SeqTxBegin(off, ln, megammap.WriteOnly)
		for i := off; i < off+ln; i++ {
			v.Set(i, i^0x2A)
		}
		v.TxEnd()
		cl.Barrier("written", r.Size())
		v.SeqTxBegin(0, n, megammap.ReadOnly|megammap.Global)
		for i, val := range v.All(0, n) {
			if val != i^0x2A {
				r.Fail(fmt.Errorf("data mismatch at %d", i))
				return
			}
		}
		v.TxEnd()
		cl.Barrier("done", r.Size())
		if r.Rank() == 0 {
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		return err
	}
	faults, prefetches, evictions := d.Stats()
	fmt.Printf("smoke: %d ranks wrote+verified %d elements in %v virtual time\n", ranks, n, c.Engine.Now())
	fmt.Printf("smoke: faults=%d prefetches=%d evictions=%d, persisted %dKB\n",
		faults, prefetches, evictions, c.PFSSize("/smoke/data.bin")>>10)
	return nil
}
