package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"megammap"
	"megammap/internal/apps/kmeans"
	"megammap/internal/blob"
	"megammap/internal/datagen"
	"megammap/internal/stager"
	"megammap/internal/telemetry"
	"megammap/internal/vtime"
)

// trace runs a small KMeans workload on the deployment with the full
// telemetry plane enabled and writes the run as Chrome trace-event JSON
// (load it in Perfetto or chrome://tracing). The pcache is bounded below
// the per-rank partition so the run exercises the whole fault path:
// pcache miss -> scache lookup -> device I/O -> stage-in -> PFS read.
func trace(dep *megammap.Deployment, out string) error {
	if dep.Telemetry == nil {
		dep.Telemetry = &telemetry.Options{
			Metrics:      true,
			Spans:        true,
			SamplePeriod: 200 * vtime.Microsecond,
		}
	}
	dep.Telemetry.Spans = true // the subcommand is pointless without spans
	c, d := dep.Build()
	tel := c.Telemetry()

	// Generate the particle dataset on the PFS before measurement.
	const n = 1 << 14
	ptsURL := "pq:///data/trace.parquet:pts"
	g := datagen.New(datagen.DefaultSpec(n, 8, 42))
	var genErr error
	c.Engine.Spawn("datagen", func(p *megammap.Proc) {
		b, err := stager.New(c).Open(ptsURL)
		if err != nil {
			genErr = err
			return
		}
		_, genErr = g.WriteTo(p, b, 0)
	})
	if err := c.Engine.Run(); err != nil {
		return err
	}
	if genErr != nil {
		return genErr
	}

	ranks := dep.Cluster.Nodes * 2
	total := int64(n) * datagen.ParticleSize
	cfg := kmeans.Config{
		DatasetURL: ptsURL,
		AssignURL:  "file:///data/trace.assign",
		K:          8,
		MaxIter:    2,
		Seed:       42,
		InitSpan:   int64(n) / int64(ranks),
		BoundBytes: total / int64(ranks) / 2,
	}
	w := megammap.NewWorld(c, ranks)
	err := w.Run(func(r *megammap.Rank) {
		if _, err := kmeans.Mega(r, d, cfg); err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		return err
	}

	f, err := os.Create(out)
	if err != nil {
		return err
	}
	vecName := func(vec uint32) string { return d.Hermes().DisplayName(blob.Raw(vec)) }
	if err := tel.WriteChromeTrace(f, vecName); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}

	// Self-validate: the file must parse as Chrome trace JSON and the
	// spans must cover the fault path end to end.
	raw, err := os.ReadFile(out)
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		return fmt.Errorf("emitted trace is not valid Chrome trace JSON: %w", err)
	}
	need := map[string]bool{
		"fault":       false,
		"scache.get":  false,
		"device.read": false,
		"stage.in":    false,
		"pfs.read":    false,
	}
	for _, ev := range doc.TraceEvents {
		if _, ok := need[ev.Name]; ok && ev.Ph == "X" {
			need[ev.Name] = true
		}
	}
	missing := make([]string, 0, len(need))
	for op, seen := range need {
		if !seen {
			missing = append(missing, op)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("trace covers no %v spans; fault path not exercised", missing)
	}
	fmt.Printf("trace: %d spans, %d events (%d dropped) -> %s\n",
		tel.Tracer().Len(), len(doc.TraceEvents), tel.Tracer().Dropped(), out)
	return nil
}
