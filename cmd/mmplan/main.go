// Command mmplan runs declarative scenario plans and gates their
// results against golden baselines.
//
// Usage:
//
//	mmplan configs/plan-bfs-hints.yaml            run + gate against the
//	                                              plan's baseline file
//	mmplan -write-baseline configs/plan-*.yaml    (re)freeze baselines
//	mmplan -baseline results/plans/x.json p.yaml  gate against an explicit
//	                                              baseline path
//
// Exit status: 0 on pass, 1 on baseline drift or failed assertions,
// 2 on usage/load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"megammap/internal/plan"
)

func main() {
	write := flag.Bool("write-baseline", false, "write/overwrite each plan's baseline file instead of gating")
	basePath := flag.String("baseline", "", "explicit baseline path (single plan only; overrides the plan's own)")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: mmplan [-write-baseline] [-baseline path] plan.yaml...")
		os.Exit(2)
	}
	if *basePath != "" && flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "mmplan: -baseline applies to a single plan file")
		os.Exit(2)
	}

	failed := false
	for _, path := range flag.Args() {
		doc, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmplan: %v\n", err)
			os.Exit(2)
		}
		p, err := plan.Load(string(doc))
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmplan: %s: %v\n", path, err)
			os.Exit(2)
		}

		res, err := p.Run()
		if res != nil {
			fmt.Println(res.Table().String())
		}
		if err != nil {
			// Assertion failures still print the table above; anything
			// else (a cell crashing) is fatal for this plan.
			fmt.Fprintf(os.Stderr, "mmplan: %s: %v\n", path, err)
			failed = true
			if res == nil {
				continue
			}
		}

		target := p.Baseline
		if *basePath != "" {
			target = *basePath
		}
		switch {
		case target == "":
			fmt.Fprintf(os.Stderr, "mmplan: %s: no baseline configured; not gating\n", path)
		case *write:
			if err := plan.WriteBaseline(target, p.NewBaseline(res)); err != nil {
				fmt.Fprintf(os.Stderr, "mmplan: %s: %v\n", path, err)
				os.Exit(2)
			}
			fmt.Printf("wrote baseline %s (%d cells)\n", target, len(res.Cells))
		default:
			b, err := plan.LoadBaseline(target)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mmplan: %s: %v (run with -write-baseline to create)\n", path, err)
				failed = true
				continue
			}
			if err := b.Gate(res); err != nil {
				fmt.Fprintf(os.Stderr, "mmplan: %s: %v\n", path, err)
				failed = true
				continue
			}
			fmt.Printf("%s: %d cells within baseline %s\n", p.Name, len(res.Cells), target)
		}
	}
	if failed {
		os.Exit(1)
	}
}
