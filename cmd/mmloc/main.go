// Command mmloc reproduces the paper's Fig. 4 code-volume comparison:
// cloc-style line counts of each application's MegaMmap implementation
// versus its baseline implementation.
package main

import (
	"fmt"
	"os"

	"megammap/internal/experiments"
)

func main() {
	tb, err := experiments.Fig4()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mmloc:", err)
		os.Exit(1)
	}
	fmt.Print(tb.String())
	fmt.Println("\nmegammap_loc vs baseline_loc counts the variant-specific driver code;")
	fmt.Println("shared_loc is algorithm logic both variants reuse verbatim (the paper's")
	fmt.Println("originals duplicate it per implementation).")
}
