// Command mmbench regenerates the paper's evaluation: one sub-experiment
// per table/figure (fig4-fig8) plus the ablation studies. Results print
// as aligned tables and, with -o, also land as CSV files (the pipeline's
// stats_dict.csv analog).
//
// Usage:
//
//	mmbench -exp all -profile small -o results/
//	mmbench -exp fig6 -profile full
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"megammap/internal/experiments"
	"megammap/internal/plan"
	"megammap/internal/stats"
	"megammap/internal/telemetry"
	"megammap/internal/vtime"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig4|fig5|fig6|fig7|fig8|ablations|failover|mttr|control|scale|tenants|gray|disagg|plan|all")
	profName := flag.String("profile", "small", "size profile: small|full")
	outDir := flag.String("o", "", "directory for CSV output (optional)")
	faultSpec := flag.String("faults", "", "fault plan for -exp failover/mttr, e.g. \"seed=42;drop=0.02;crash=1@40ms;revive=1@80ms\" (empty = default plan)")
	planPath := flag.String("plan", "", "scenario-plan file for -exp plan (gated against the plan's baseline when one is configured)")
	telem := flag.Bool("telemetry", false, "install the telemetry plane on every experiment cluster and write per-run metric/sample tables under <o>/telemetry/ (requires -o)")
	flag.Parse()

	if *telem {
		if *outDir == "" {
			fmt.Fprintln(os.Stderr, "mmbench: -telemetry requires -o")
			os.Exit(2)
		}
		experiments.EnableTelemetry(telemetry.Options{
			Metrics:      true,
			SamplePeriod: vtime.Millisecond,
		})
	}

	var prof experiments.Profile
	switch *profName {
	case "small":
		prof = experiments.Small()
	case "full":
		prof = experiments.Full()
	default:
		fmt.Fprintf(os.Stderr, "mmbench: unknown profile %q\n", *profName)
		os.Exit(2)
	}

	type driver struct {
		name string
		run  func() (*stats.Table, error)
	}
	drivers := []driver{
		{"fig4", func() (*stats.Table, error) { return experiments.Fig4() }},
		{"fig5", func() (*stats.Table, error) { return experiments.Fig5(prof) }},
		{"fig6", func() (*stats.Table, error) { return experiments.Fig6(prof) }},
		{"fig7", func() (*stats.Table, error) { return experiments.Fig7(prof) }},
		{"fig8", func() (*stats.Table, error) { return experiments.Fig8(prof) }},
		{"ablations", func() (*stats.Table, error) { return nil, nil }}, // expanded below
		// failover and mttr are opt-in (not part of "all"): they exercise
		// the fault plane, which the paper's figures run without.
		{"failover", func() (*stats.Table, error) { return experiments.Failover(prof, *faultSpec) }},
		{"mttr", func() (*stats.Table, error) { return experiments.MTTR(prof, *faultSpec) }},
		{"control", func() (*stats.Table, error) { return experiments.Control(prof, *faultSpec) }},
		// scale is opt-in too: it benchmarks the simulator itself (engine
		// throughput and host RAM per node), not a paper figure.
		{"scale", func() (*stats.Table, error) { return experiments.Scale(prof) }},
		// tenants is the multi-tenant QoS ablation (isolation off vs on);
		// opt-in because the paper's figures are single-tenant.
		{"tenants", func() (*stats.Table, error) { return experiments.Tenants(prof) }},
		// gray is the gray-failure resilience ablation (hedged reads and
		// quarantine-aware placement, off vs on under a scripted
		// straggler); opt-in for the same reason.
		{"gray", func() (*stats.Table, error) { return experiments.Gray(prof) }},
		// disagg is the disaggregated-memory ablation (local-tiered vs
		// compute + fabric-attached memory pools, incl. a mid-run pool
		// node crash); opt-in because the paper's testbed is uniform.
		{"disagg", func() (*stats.Table, error) { return experiments.Disagg(prof) }},
		// plan runs a declarative scenario plan (-plan file) and gates it
		// against the golden baseline the plan names.
		{"plan", func() (*stats.Table, error) { return runPlan(*planPath) }},
	}

	ablations := []driver{
		{"ablation-prefetch", func() (*stats.Table, error) { return experiments.AblationPrefetch(prof) }},
		{"ablation-worker-split", func() (*stats.Table, error) { return experiments.AblationWorkerSplit(prof) }},
		{"ablation-partial-paging", func() (*stats.Table, error) { return experiments.AblationPartialPaging(prof) }},
		{"ablation-page-size", func() (*stats.Table, error) { return experiments.AblationPageSize(prof) }},
		{"ablation-coherence", func() (*stats.Table, error) { return experiments.AblationCoherence(prof) }},
		{"ablation-bag-order", func() (*stats.Table, error) { return experiments.AblationBagOrder(prof) }},
	}

	var selected []driver
	switch *exp {
	case "all":
		for _, d := range drivers[:5] {
			selected = append(selected, d)
		}
		selected = append(selected, ablations...)
	case "ablations":
		selected = ablations
	default:
		for _, d := range drivers {
			if d.name == *exp && d.name != "ablations" {
				selected = append(selected, d)
			}
		}
		for _, d := range ablations {
			if d.name == *exp || strings.TrimPrefix(d.name, "ablation-") == strings.TrimPrefix(*exp, "ablation-") {
				selected = append(selected, d)
			}
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "mmbench: unknown experiment %q\n", *exp)
		os.Exit(2)
	}

	for _, d := range selected {
		start := time.Now()
		tb, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmbench: %s: %v\n", d.name, err)
			os.Exit(1)
		}
		fmt.Printf("%s(host time %.1fs, profile %s)\n\n", tb.String(), time.Since(start).Seconds(), prof.Name)
		if *outDir != "" {
			if err := writeCSV(*outDir, tb); err != nil {
				fmt.Fprintf(os.Stderr, "mmbench: writing %s: %v\n", tb.Name(), err)
				os.Exit(1)
			}
		}
		if *telem {
			if err := writeTelemetry(*outDir, d.name); err != nil {
				fmt.Fprintf(os.Stderr, "mmbench: telemetry for %s: %v\n", d.name, err)
				os.Exit(1)
			}
		}
	}
}

// runPlan loads, runs, and baseline-gates one scenario plan.
func runPlan(path string) (*stats.Table, error) {
	if path == "" {
		return nil, fmt.Errorf("-exp plan requires -plan <file>")
	}
	doc, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	p, err := plan.Load(string(doc))
	if err != nil {
		return nil, err
	}
	res, err := p.Run()
	if err != nil {
		return nil, err
	}
	if p.Baseline != "" {
		b, err := plan.LoadBaseline(p.Baseline)
		if err != nil {
			return nil, fmt.Errorf("baseline: %w (generate with mmplan -write-baseline)", err)
		}
		if err := b.Gate(res); err != nil {
			return nil, err
		}
	}
	return res.Table(), nil
}

// writeTelemetry drains the telemetry planes of the driver's runs and
// writes each plane's tables as <o>/telemetry/<exp>_run<i>_<table>.csv.
func writeTelemetry(dir, exp string) error {
	runs := experiments.DrainTelemetry()
	if len(runs) == 0 {
		return nil
	}
	tdir := filepath.Join(dir, "telemetry")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		return err
	}
	for i, tel := range runs {
		for _, tb := range tel.Tables() {
			name := fmt.Sprintf("%s_run%d_%s.csv", exp, i, tb.Name())
			f, err := os.Create(filepath.Join(tdir, name))
			if err != nil {
				return err
			}
			if err := tb.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeCSV(dir string, tb *stats.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, tb.Name()+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
