package megammap_test

import (
	"fmt"
	"testing"

	"megammap"
)

// TestPublicAPISmoke walks the exported surface end to end: build a
// testbed, deploy the DSM, run ranks, use vectors with transactions and
// the iterator, persist, and read cluster metrics. It guards the alias
// layer against drifting from the internal packages.
func TestPublicAPISmoke(t *testing.T) {
	c := megammap.NewCluster(megammap.DefaultTestbed(2))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	w := megammap.NewWorld(c, 4)
	const n = 4096
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		v, err := megammap.Open[float64](cl, "file:///api/smoke.bin", megammap.Float64Codec{},
			megammap.WithPageSize(8<<10))
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			v.Resize(n)
		}
		cl.Barrier("sized", r.Size())
		v.Pgas(r.Rank(), r.Size())
		v.BoundMemory(16 << 10)
		off, ln := v.LocalOff(), v.LocalLen()
		v.SeqTxBegin(off, ln, megammap.WriteOnly)
		for i := off; i < off+ln; i++ {
			v.Set(i, float64(i)/2)
		}
		v.TxEnd()
		cl.Barrier("written", r.Size())

		var sum float64
		v.SeqTxBegin(0, n, megammap.ReadOnly|megammap.Global)
		for _, val := range v.All(0, n) {
			sum += val
		}
		v.TxEnd()
		want := float64(n) * float64(n-1) / 4
		if sum != want {
			r.Fail(errf("sum = %f, want %f", sum, want))
			return
		}
		total := r.SumFloat64(sum)
		if total != want*float64(r.Size()) {
			r.Fail(errf("allreduce = %f", total))
			return
		}
		cl.Barrier("done", r.Size())
		if r.Rank() == 0 {
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.PFSSize("/api/smoke.bin"); got != n*8 {
		t.Errorf("persisted %d bytes, want %d", got, n*8)
	}
	if c.MaxDRAMPeak() <= 0 {
		t.Error("no DRAM usage recorded")
	}
}

func TestPublicURLParsing(t *testing.T) {
	u, err := megammap.ParseURL("h5:///sim/out.h5:grid")
	if err != nil {
		t.Fatal(err)
	}
	if u.Proto != "h5" || u.Path != "/sim/out.h5" || u.Param != "grid" {
		t.Errorf("parsed %+v", u)
	}
}

func TestPublicProfiles(t *testing.T) {
	if megammap.NVMeProfile(1).Score <= megammap.HDDProfile(1).Score {
		t.Error("tier scores out of order")
	}
	if megammap.RoCE40().Bandwidth <= megammap.TCP10().Bandwidth {
		t.Error("fabric bandwidths out of order")
	}
	if megammap.DefaultTestbed(4).Nodes != 4 {
		t.Error("testbed spec wrong")
	}
}

func errf(format string, args ...any) error { return fmt.Errorf(format, args...) }

// TestSoakAllFeaturesTogether runs every major mechanism in one job —
// bounded pcaches forcing eviction, the Data Organizer migrating hot
// pages, backup replication, page checksums, read-only global replicas,
// and multi-phase transactions — and checks that the data survives all
// of their interactions. Individually these paths have dedicated tests;
// this soak guards the combinations (an organizer move racing a commit,
// a checksummed page served from a node-local replica, ...).
func TestSoakAllFeaturesTogether(t *testing.T) {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	cfg.ChecksumPages = true
	cfg.OrganizePeriod = 5 * megammap.Millisecond
	c := megammap.NewCluster(megammap.DefaultTestbed(3))
	d := megammap.NewDSM(c, cfg)
	const ranks = 6
	w := megammap.NewWorld(c, ranks)
	const n = 3 * 4096
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		v, err := megammap.Open[int64](cl, "soak", megammap.Int64Codec{},
			megammap.WithPageSize(4<<10))
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			v.Resize(n)
		}
		cl.Barrier("sized", ranks)
		v.Pgas(r.Rank(), r.Size())
		v.BoundMemory(3 * v.PageSize()) // force constant eviction

		// Round 1: write own partition, read a shifted window globally,
		// then overwrite own partition with a derived value. Repeating
		// rounds makes earlier pages cold so the organizer demotes and
		// re-promotes them under live traffic.
		off, ln := v.LocalOff(), v.LocalLen()
		for round := int64(1); round <= 3; round++ {
			v.SeqTxBegin(off, ln, megammap.WriteOnly)
			for i := off; i < off+ln; i++ {
				v.Set(i, round*1_000_000+i)
			}
			v.TxEnd()
			r.Barrier()

			// Global shifted read: every rank scans its right neighbor's
			// partition, creating node-local replicas of remote pages.
			peer := (r.Rank() + 1) % r.Size()
			poff := int64(peer) * ln
			v.SeqTxBegin(poff, ln, megammap.ReadOnly|megammap.Global)
			for i := poff; i < poff+ln; i += 97 {
				if got := v.Get(i); got != round*1_000_000+i {
					t.Errorf("round %d: v[%d] = %d, want %d", round, i, got, round*1_000_000+i)
					break
				}
			}
			v.TxEnd()
			r.Barrier()
		}

		// Final full verification of own partition.
		v.SeqTxBegin(off, ln, megammap.ReadOnly)
		for i := off; i < off+ln; i++ {
			if got := v.Get(i); got != 3_000_000+i {
				t.Errorf("final: v[%d] = %d, want %d", i, got, 3_000_000+i)
				break
			}
		}
		v.TxEnd()
	})
	if err != nil {
		t.Fatal(err)
	}
}
