package megammap_test

import (
	"fmt"
	"log"

	"megammap"
)

// The simplest possible MegaMmap program: one node, one process, a
// bounded vector that spills to storage and persists at shutdown.
func Example() {
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, err := megammap.Open[int64](cl, "file:///out/squares.bin", megammap.Int64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		v.Resize(10000)
		v.BoundMemory(32 << 10) // spill beyond 32 KiB of pcache

		v.SeqTxBegin(0, 10000, megammap.WriteOnly)
		for i := int64(0); i < 10000; i++ {
			v.Set(i, i*i)
		}
		v.TxEnd()

		var sum int64
		v.SeqTxBegin(0, 10000, megammap.ReadOnly)
		for _, val := range v.All(0, 10000) {
			sum += val
		}
		v.TxEnd()
		fmt.Println("sum of squares:", sum)

		if err := d.Shutdown(p); err != nil {
			log.Fatal(err)
		}
		fmt.Println("persisted bytes:", c.PFSSize("/out/squares.bin"))
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// sum of squares: 333283335000
	// persisted bytes: 80000
}

// Transactions declare intent; seeded random transactions let the
// prefetcher predict "random" access exactly (paper §III-A).
func ExampleVector_RandTxBegin() {
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ := megammap.Open[int64](cl, "bag", megammap.Int64Codec{})
		v.Resize(50000)
		v.SeqTxBegin(0, 50000, megammap.WriteOnly)
		for i := int64(0); i < 50000; i++ {
			v.Set(i, i)
		}
		v.TxEnd()
		v.Close()
		v.BoundMemory(64 << 10)

		// Out-of-order bagging: 1000 seeded-random draws.
		v.RandTxBegin(0, 50000, 42, megammap.ReadOnly)
		var sum int64
		for i := int64(0); i < 1000; i++ {
			sum += v.Get(v.RandomAt(i))
		}
		v.TxEnd()
		fmt.Println("bag sum:", sum)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// bag sum: 24702086
}

// Matrices are row-major views over shared vectors (paper §III-A).
func ExampleOpenMatrix() {
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		m, err := megammap.OpenMatrix[int64](cl, "grid", megammap.Int64Codec{}, 4, 3)
		if err != nil {
			log.Fatal(err)
		}
		m.RowTxBegin(0, 4, megammap.WriteOnly)
		for r := int64(0); r < 4; r++ {
			for col := int64(0); col < 3; col++ {
				m.SetAt(r, col, r*10+col)
			}
		}
		m.TxEnd()
		m.RowTxBegin(2, 1, megammap.ReadOnly)
		row := make([]int64, 3)
		m.GetRow(2, row)
		m.TxEnd()
		fmt.Println("row 2:", row)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// row 2: [20 21 22]
}

// Logs are append-only shared sequences: every rank appends
// concurrently, then any rank scans the merged history.
func ExampleOpenLog() {
	c := megammap.NewCluster(megammap.DefaultTestbed(2))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	w := megammap.NewWorld(c, 4)
	var total int64
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		l, err := megammap.OpenLog[int64](cl, "events", megammap.Int64Codec{})
		if err != nil {
			r.Fail(err)
			return
		}
		l.AppendTxBegin(8)
		for i := 0; i < 8; i++ {
			l.Append(int64(r.Rank()))
		}
		l.TxEnd()
		r.Barrier()
		if r.Rank() == 0 {
			l.Scan(0, l.Len(), func(_ int64, v int64) bool {
				total += v
				return true
			})
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	// 8 appends of each rank id 0..3: 8*(0+1+2+3) = 48.
	fmt.Println("entries:", 32, "sum:", total)
	// Output:
	// entries: 32 sum: 48
}

// Deployments load from the paper's YAML configuration interface.
func ExampleLoadDeployment() {
	dep, err := megammap.LoadDeployment(`
cluster:
  nodes: 2
  dram_per_node: 16MB
runtime:
  page_size: 16KB
  replicas: 1
`)
	if err != nil {
		log.Fatal(err)
	}
	c, d := dep.Build()
	fmt.Println("nodes:", len(c.Nodes))
	fmt.Println("replicas:", dep.Runtime.Replicas)
	c.Engine.Spawn("app", func(p *megammap.Proc) { _ = d.Shutdown(p) })
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
	// Output:
	// nodes: 2
	// replicas: 1
}
