package megammap

import "fmt"

// This file provides the derived distributed data structures the paper
// sketches on top of the shared vector ("more complex distributed data
// structures, such as matrices, logs, and multi-dimensional arrays, can
// be developed using simple offset calculations and appends", §III-A).

// Matrix is a row-major 2-D view over a shared vector. All ranks open it
// with identical dimensions; rows map to contiguous vector ranges, so row
// transactions inherit the sequential coherence optimizations.
type Matrix[T any] struct {
	v          *Vector[T]
	rows, cols int64
}

// OpenMatrix connects to (or creates) a rows x cols shared matrix named
// name. Nonvolatile URL names work exactly as with Open.
func OpenMatrix[T any](c *Client, name string, codec Codec[T], rows, cols int64, opts ...VectorOpt) (*Matrix[T], error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("megammap: matrix %q needs positive dimensions, got %dx%d", name, rows, cols)
	}
	v, err := Open[T](c, name, codec, opts...)
	if err != nil {
		return nil, err
	}
	if v.Len() == 0 {
		v.Resize(rows * cols)
	} else if v.Len() != rows*cols {
		return nil, fmt.Errorf("megammap: matrix %q has %d elements, want %dx%d", name, v.Len(), rows, cols)
	}
	return &Matrix[T]{v: v, rows: rows, cols: cols}, nil
}

// Rows returns the row count.
func (m *Matrix[T]) Rows() int64 { return m.rows }

// Cols returns the column count.
func (m *Matrix[T]) Cols() int64 { return m.cols }

// Vector exposes the backing shared vector (bounds, Pgas, Destroy).
func (m *Matrix[T]) Vector() *Vector[T] { return m.v }

// At reads element (r, c).
func (m *Matrix[T]) At(r, c int64) T { return m.v.Get(r*m.cols + c) }

// SetAt writes element (r, c).
func (m *Matrix[T]) SetAt(r, c int64, val T) { m.v.Set(r*m.cols+c, val) }

// GetRow bulk-reads row r into dst (len(dst) == Cols()).
func (m *Matrix[T]) GetRow(r int64, dst []T) { m.v.GetRange(r*m.cols, dst) }

// SetRow bulk-writes row r from src (len(src) == Cols()).
func (m *Matrix[T]) SetRow(r int64, src []T) { m.v.SetRange(r*m.cols, src) }

// RowTxBegin declares intent over rows [r0, r0+nrows) — a sequential
// transaction over their contiguous element range.
func (m *Matrix[T]) RowTxBegin(r0, nrows int64, flags AccessFlags) {
	m.v.SeqTxBegin(r0*m.cols, nrows*m.cols, flags)
}

// ColTxBegin declares intent over column c of rows [r0, r0+nrows) — a
// strided transaction (one element per row).
func (m *Matrix[T]) ColTxBegin(c, r0, nrows int64, flags AccessFlags) {
	m.v.TxBegin(StrideTx{F: flags, Off: r0*m.cols + c, N: nrows, Stride: m.cols})
}

// TxEnd commits the active transaction.
func (m *Matrix[T]) TxEnd() { m.v.TxEnd() }

// RowPartition splits the rows evenly among nprocs ranks and returns this
// rank's [row0, row0+n) share.
func (m *Matrix[T]) RowPartition(rank, nprocs int) (row0, n int64) {
	per := m.rows / int64(nprocs)
	rem := m.rows % int64(nprocs)
	r := int64(rank)
	row0 = r*per + minI64(r, rem)
	n = per
	if r < rem {
		n++
	}
	return row0, n
}

// TransposeInto writes the transpose of rows [r0, r0+nrows) into dst
// (which must be Cols() x Rows()), the paper's example of an
// embarrassingly parallel read/write-local phase.
func (m *Matrix[T]) TransposeInto(dst *Matrix[T], r0, nrows int64) error {
	if dst.rows != m.cols || dst.cols != m.rows {
		return fmt.Errorf("megammap: transpose target is %dx%d, want %dx%d", dst.rows, dst.cols, m.cols, m.rows)
	}
	m.RowTxBegin(r0, nrows, ReadOnly)
	// Each source row becomes a strided column write in the destination.
	dst.v.TxBegin(StrideTx{F: WriteOnly | Global, Off: r0, N: nrows * m.cols, Stride: 1})
	row := make([]T, m.cols)
	for r := r0; r < r0+nrows; r++ {
		m.GetRow(r, row)
		for c := int64(0); c < m.cols; c++ {
			dst.v.Set(c*dst.cols+r, row[c])
		}
	}
	dst.TxEnd()
	m.TxEnd()
	return nil
}

// Log is an append-only shared sequence (the DBSCAN k-d construction
// pattern): any rank appends; records are immutable once written.
type Log[T any] struct {
	v *Vector[T]
}

// OpenLog connects to (or creates) the shared log named name.
func OpenLog[T any](c *Client, name string, codec Codec[T], opts ...VectorOpt) (*Log[T], error) {
	v, err := Open[T](c, name, codec, opts...)
	if err != nil {
		return nil, err
	}
	return &Log[T]{v: v}, nil
}

// Vector exposes the backing shared vector.
func (l *Log[T]) Vector() *Vector[T] { return l.v }

// Len returns the number of records appended so far.
func (l *Log[T]) Len() int64 { return l.v.Len() }

// AppendTxBegin opens an append phase expecting about n records.
func (l *Log[T]) AppendTxBegin(n int64) {
	l.v.SeqTxBegin(l.v.Len(), n, Append|Global)
}

// Append adds one record and returns its index.
func (l *Log[T]) Append(val T) int64 { return l.v.Append(val) }

// TxEnd commits the phase.
func (l *Log[T]) TxEnd() { l.v.TxEnd() }

// Scan iterates records [from, to) inside a read transaction of its own.
func (l *Log[T]) Scan(from, to int64, fn func(i int64, val T) bool) {
	if to > l.v.Len() {
		to = l.v.Len()
	}
	if from >= to {
		return
	}
	l.v.SeqTxBegin(from, to-from, ReadOnly|Global)
	defer l.v.TxEnd()
	for i, val := range l.v.All(from, to-from) {
		if !fn(i, val) {
			return
		}
	}
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
