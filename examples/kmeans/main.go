// KMeans example: the paper's Listing 1 workload end to end on the
// public API — a synthetic clustered particle dataset on the parallel
// filesystem is presented as shared memory, partitioned with Pgas, and
// clustered by parallel ranks coordinating through collectives.
package main

import (
	"fmt"
	"log"
	"math"

	"megammap"
	"megammap/internal/datagen"
	"megammap/internal/stager"
)

const (
	nodes  = 4
	ranks  = 16
	points = 60000
	k      = 4
	iters  = 6
)

func main() {
	c := megammap.NewCluster(megammap.DefaultTestbed(nodes))

	// Produce the dataset (the Gadget-4 stand-in) on the PFS.
	gen := datagen.New(datagen.DefaultSpec(points, k, 42))
	c.Engine.Spawn("datagen", func(p *megammap.Proc) {
		b, err := stager.New(c).Open("pq:///data/points.parquet:pos")
		if err != nil {
			log.Fatal(err)
		}
		if _, err := gen.WriteTo(p, b, 0); err != nil {
			log.Fatal(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}

	d := megammap.NewDSM(c, megammap.DefaultConfig())
	w := megammap.NewWorld(c, ranks)
	var centroids [][3]float64
	var inertia float64
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		pts, err := megammap.Open[datagen.Particle](cl, "pq:///data/points.parquet:pos",
			datagen.ParticleCodec{}, megammap.WithPageSize(48<<10))
		if err != nil {
			r.Fail(err)
			return
		}
		pts.BoundMemory(1 << 20) // paper Listing 1: BoundMemory(MEGABYTES(1))
		pts.Pgas(r.Rank(), r.Size())
		n := pts.Len()

		// Initial centroids, KMeans‖-flavored: rank 0 oversamples strided
		// candidates, then greedily keeps the k most spread-out ones.
		var ctr [][3]float64
		if r.Rank() == 0 {
			const oversample = 8
			var cands [][3]float64
			pts.SeqTxBegin(0, int64(k*oversample), megammap.ReadOnly|megammap.Global)
			for i := 0; i < k*oversample; i++ {
				pt := pts.Get(int64(i) * n / int64(k*oversample))
				cands = append(cands, [3]float64{float64(pt.X), float64(pt.Y), float64(pt.Z)})
			}
			pts.TxEnd()
			ctr = append(ctr, cands[0])
			for len(ctr) < k {
				best, bestD := 0, -1.0
				for ci, cand := range cands {
					near := math.MaxFloat64
					for _, have := range ctr {
						dx, dy, dz := cand[0]-have[0], cand[1]-have[1], cand[2]-have[2]
						if d := dx*dx + dy*dy + dz*dz; d < near {
							near = d
						}
					}
					if near > bestD {
						best, bestD = ci, near
					}
				}
				ctr = append(ctr, cands[best])
			}
		}
		ctr = r.Bcast(0, ctr, int64(k)*24).([][3]float64)

		off, ln := pts.LocalOff(), pts.LocalLen()
		for it := 0; it < iters; it++ {
			acc := make([]float64, k*4+1)
			tx := pts
			tx.SeqTxBegin(off, ln, megammap.ReadOnly)
			for i := off; i < off+ln; i++ {
				pt := tx.Get(i)
				best, bestD := 0, math.MaxFloat64
				for ci, cc := range ctr {
					dx := float64(pt.X) - cc[0]
					dy := float64(pt.Y) - cc[1]
					dz := float64(pt.Z) - cc[2]
					if dd := dx*dx + dy*dy + dz*dz; dd < bestD {
						best, bestD = ci, dd
					}
				}
				acc[best*4] += float64(pt.X)
				acc[best*4+1] += float64(pt.Y)
				acc[best*4+2] += float64(pt.Z)
				acc[best*4+3]++
				acc[k*4] += bestD
			}
			tx.TxEnd()
			acc = r.SumFloat64s(acc)
			for ci := range ctr {
				if cnt := acc[ci*4+3]; cnt > 0 {
					ctr[ci] = [3]float64{acc[ci*4] / cnt, acc[ci*4+1] / cnt, acc[ci*4+2] / cnt}
				}
			}
			if r.Rank() == 0 {
				fmt.Printf("iter %d: inertia %.4g (t=%v)\n", it, acc[k*4], r.Proc().Now())
			}
			inertia = acc[k*4]
		}
		r.Barrier()
		if r.Rank() == 0 {
			centroids = ctr
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrecovered centroids vs true halo centers:")
	for _, ctr := range centroids {
		best, bestD := 0, math.MaxFloat64
		for hi, h := range gen.Centers() {
			dx := ctr[0] - float64(h.X)
			dy := ctr[1] - float64(h.Y)
			dz := ctr[2] - float64(h.Z)
			if dd := dx*dx + dy*dy + dz*dz; dd < bestD {
				best, bestD = hi, dd
			}
		}
		h := gen.Centers()[best]
		fmt.Printf("  (%7.1f %7.1f %7.1f) ~ halo %d (%7.1f %7.1f %7.1f), off by %.2f\n",
			ctr[0], ctr[1], ctr[2], best, h.X, h.Y, h.Z, math.Sqrt(bestD))
	}
	fmt.Printf("final inertia: %.4g\n", inertia)
}
