// KVStore example: the paper's Fig. 3 "read, write, and append global"
// case study — a distributed key-value table living in one MegaMmap
// shared vector, hammered by every rank at once. Single-page probes are
// atomic because the runtime serializes same-page MemoryTasks; probe
// windows that may cross a page boundary escalate to a striped
// distributed lock, exactly the paper's prescription for multi-page
// atomicity. The table is deliberately bounded to a slice of DRAM so
// part of it lives in NVMe: the store works identically wherever its
// pages happen to sit in the DMSH.
package main

import (
	"fmt"
	"log"

	"megammap"
	"megammap/internal/apps/kvstore"
)

const (
	nodes    = 4
	ranks    = 16
	capacity = 1 << 14 // slots
	opsEach  = 400
)

func main() {
	c := megammap.NewCluster(megammap.DefaultTestbed(nodes))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	w := megammap.NewWorld(c, ranks)

	var finalLen int64
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		s, err := kvstore.Open(cl, "table", capacity,
			megammap.WithPageSize(48<<10)) // multiple of the 24-byte slot
		if err != nil {
			r.Fail(err)
			return
		}

		// Phase 1: every rank inserts its own key range, concurrently
		// with everyone else's inserts into the same shared table.
		base := uint64(r.Rank()) << 32
		for i := 0; i < opsEach; i++ {
			if err := s.Put(base|uint64(i), int64(r.Rank()*opsEach+i)); err != nil {
				log.Fatal(err)
			}
		}
		r.Barrier()

		// Phase 2: read back a *neighbor's* keys — cross-rank visibility
		// through the coherence protocol, no message passing involved.
		peer := uint64((r.Rank() + 1) % ranks)
		for i := 0; i < opsEach; i++ {
			want := int64(int(peer)*opsEach + i)
			got, ok := s.Get(peer<<32 | uint64(i))
			if !ok || got != want {
				log.Fatalf("rank %d: peer key %d = %d,%v want %d",
					r.Rank(), i, got, ok, want)
			}
		}
		r.Barrier()

		// Phase 3: delete every other own key; Len() shrinks accordingly.
		for i := 0; i < opsEach; i += 2 {
			if !s.Delete(base | uint64(i)) {
				log.Fatalf("rank %d: delete miss at %d", r.Rank(), i)
			}
		}
		r.Barrier()
		if r.Rank() == 0 {
			finalLen = s.Len()
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	want := int64(ranks * opsEach / 2)
	fmt.Printf("table entries after churn: %d (want %d)\n", finalLen, want)
	if finalLen != want {
		log.Fatal("table count wrong")
	}
	fmt.Printf("virtual runtime: %v\n", c.Engine.Now())
}
