// Out-of-core example: the paper's Fig. 6 moment in miniature. A dataset
// twice the size of a node's memory budget streams through a bounded
// pcache; MegaMmap spills pages across the storage hierarchy and the
// transaction-informed prefetcher keeps the re-scan fast, while the same
// workload with plain in-memory allocation would be OOM-killed.
package main

import (
	"fmt"
	"log"

	"megammap"
)

func main() {
	spec := megammap.DefaultTestbed(1)
	spec.DRAMPer = 4 * megammap.MB                   // a deliberately small node
	spec.Tiers[0].Profile.Capacity = 2 * megammap.MB // shrink the NVMe tier too
	c := megammap.NewCluster(spec)

	// Plain allocation of the 8 MB working set: the OOM killer's view.
	if err := c.Nodes[0].Alloc(8 * megammap.MB); err != nil {
		fmt.Printf("plain in-memory allocation: %v\n\n", err)
	} else {
		log.Fatal("expected the OOM killer")
	}

	cfg := megammap.DefaultConfig()
	cfg.Tiers = []string{"nvme", "ssd", "hdd"}
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, err := megammap.Open[int64](cl, "file:///data/big.bin", megammap.Int64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		const n = 1 << 20 // 8 MB of int64s on a 4 MB node
		v.Resize(n)
		v.BoundMemory(1 * megammap.MB)

		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i*i%1000003)
		}
		v.TxEnd()

		var sum int64
		v.SeqTxBegin(0, n, megammap.ReadOnly)
		for i := int64(0); i < n; i++ {
			sum += v.Get(i)
		}
		v.TxEnd()

		faults, prefetches, evictions := d.Stats()
		fmt.Printf("worked with 8MB data on a 4MB node:\n")
		fmt.Printf("  checksum   = %d\n", sum)
		fmt.Printf("  peak DRAM  = %d KiB of %d KiB\n", c.Nodes[0].DRAMPeak()>>10, spec.DRAMPer>>10)
		fmt.Printf("  faults     = %d, prefetches = %d, evictions = %d\n", faults, prefetches, evictions)
		usage := d.Hermes().TierUsage()
		for _, t := range spec.Tiers { // spec order: map iteration would shuffle lines
			if used := usage[t.Name]; used > 0 {
				fmt.Printf("  tier %-4s  = %d KiB\n", t.Name, used>>10)
			}
		}
		fmt.Printf("  virtual t  = %v\n", p.Now())
		if err := d.Shutdown(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  persisted  = %d KiB to the PFS\n", c.PFSSize("/data/big.bin")>>10)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}
