// Adaptive-control example: the repair governor paces anti-entropy
// re-replication from live utilization signals instead of a fixed
// RepairPeriod. The timeline crashes a node to build a repair backlog,
// then runs a foreground read burst over the surviving copies: the
// governor backs repair off to its maximum interval while repairs
// cannot progress (the stall latch rides out the outage) and while the
// foreground keeps the devices busy, then collapses to the minimum
// interval and drains the whole queue the moment the system goes idle.
package main

import (
	"fmt"
	"log"

	"megammap"
)

const (
	crashAt  = 60 * megammap.Millisecond
	reviveAt = 120 * megammap.Millisecond
	burstLen = 40 * megammap.Millisecond
)

// phase accumulates what the repair-interval gauge did during one
// stretch of the timeline.
type phase struct {
	name             string
	from, to         megammap.Duration
	minIval, maxIval int64 // control.repair_interval_us range
	maxQueue         int64 // core.repair_queue peak
}

func main() {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	cfg.RepairPeriod = 0 // the governor owns repair pacing
	cfg.Control = megammap.DefaultControlConfig()

	c := megammap.NewCluster(megammap.DefaultTestbed(2))
	tel := c.InstallTelemetry(megammap.TelemetryOptions{Metrics: true})
	plan, err := megammap.ParseFaultSpec(
		fmt.Sprintf("seed=42;crash=1@%dms;revive=1@%dms",
			crashAt/megammap.Millisecond, reviveAt/megammap.Millisecond))
	if err != nil {
		log.Fatal(err)
	}
	c.InstallFaults(*plan)
	d := megammap.NewDSM(c, cfg)

	var (
		phases []*phase
		cur    *phase
	)
	begin := func(now megammap.Duration, name string) {
		if cur != nil {
			cur.to = now
		}
		cur = &phase{name: name, from: now, minIval: 1 << 62}
		phases = append(phases, cur)
	}

	// The sampler rides the same vtime clock as the control ticker, so
	// every sample lands between governor decisions deterministically.
	reg := tel.Registry()
	ivalKey := megammap.MetricKey{Name: "control.repair_interval_us", Node: -1, Subsystem: "control"}
	queueKey := megammap.MetricKey{Name: "core.repair_queue", Node: -1, Subsystem: "core"}
	c.Engine.SpawnDaemon("sampler", func(p *megammap.Proc) {
		for {
			p.Sleep(500 * megammap.Microsecond)
			ival, q := reg.Value(ivalKey), reg.Value(queueKey)
			if cur == nil || ival == 0 {
				continue // control plane has not ticked yet
			}
			if ival < cur.minIval {
				cur.minIval = ival
			}
			if ival > cur.maxIval {
				cur.maxIval = ival
			}
			if q > cur.maxQueue {
				cur.maxQueue = q
			}
		}
	})

	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, err := megammap.Open[int64](cl, "guarded", megammap.Int64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		const n = 1 << 15
		begin(p.Now(), "write")
		v.Resize(n)
		v.BoundMemory(2 * v.PageSize())
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i*3+1)
		}
		v.TxEnd()
		v.Close()
		if p.Now() >= crashAt {
			log.Fatalf("write ran past the scripted crash (%v)", p.Now())
		}

		// Quiet stretch before the scripted crash: nothing to repair, no
		// load, so the governor relaxes the interval toward RepairMin.
		begin(p.Now(), "quiet")
		for p.Now() < crashAt {
			p.Sleep(megammap.Millisecond)
		}

		// Node 1 dies at 60ms, stranding every backup copy. Repair wakes
		// keep trying, find no live replica target, and the stall latch
		// pins the interval at RepairMax instead of burning the fabric.
		begin(p.Now(), "outage")
		for p.Now() < reviveAt {
			p.Sleep(megammap.Millisecond)
		}

		// The revived node is cold: the whole dataset is under-replicated
		// and the governor could race ahead — but the foreground scan
		// keeps the devices busy, so repair must stay backed off.
		begin(p.Now(), "burst")
		for deadline := p.Now() + burstLen; p.Now() < deadline; {
			v.SeqTxBegin(0, n, megammap.ReadOnly)
			for i := int64(0); i < n; i++ {
				if got := v.Get(i); got != i*3+1 {
					log.Fatalf("data lost during the outage at %d: %d", i, got)
				}
			}
			v.TxEnd()
		}

		// RedundancyWindow (not a raw queue poll) is the drain signal:
		// the queue empties while the last repair's transfer is still in
		// flight, and the window only closes once it lands.
		begin(p.Now(), "idle")
		for i := 0; ; i++ {
			if _, _, ok := d.Hermes().RedundancyWindow(); ok {
				break
			}
			if i > 2000 {
				log.Fatal("repair queue did not drain")
			}
			p.Sleep(megammap.Millisecond)
		}
		cur.to = p.Now()

		minUs := int64(cfg.Control.RepairMin / megammap.Microsecond)
		maxUs := int64(cfg.Control.RepairMax / megammap.Microsecond)
		fmt.Printf("adaptive repair pacing (governor bounds %d..%dµs):\n", minUs, maxUs)
		for _, ph := range phases {
			fmt.Printf("  %-6s %5.1fms .. %5.1fms  interval %5d..%5dµs  queue peak %d\n",
				ph.name,
				float64(ph.from)/float64(megammap.Millisecond),
				float64(ph.to)/float64(megammap.Millisecond),
				ph.minIval, ph.maxIval, ph.maxQueue)
		}
		quiet, outage, burst, idle := phases[1], phases[2], phases[3], phases[4]
		if quiet.minIval != minUs {
			log.Fatalf("repair pacing never relaxed while quiet: %dµs", quiet.minIval)
		}
		if outage.maxIval != maxUs {
			log.Fatalf("stall latch never pinned the interval: %dµs", outage.maxIval)
		}
		if burst.minIval != maxUs {
			log.Fatalf("repair sped up under foreground load: %dµs", burst.minIval)
		}
		if idle.minIval != minUs {
			log.Fatalf("repair never reached full speed when idle: %dµs", idle.minIval)
		}
		lost, restored, ok := d.Hermes().RedundancyWindow()
		if !ok {
			log.Fatal("redundancy window never closed")
		}
		fmt.Printf("full redundancy restored %v after the crash (window %v -> %v)\n",
			restored-lost, lost, restored)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}
