// Quickstart: a single-node tour of the MegaMmap public API — create a
// simulated testbed, deploy the DSM, and use a bounded, persistent shared
// vector through intent-declaring transactions. Mirrors the flavor of the
// paper's Listing 1.
package main

import (
	"fmt"
	"log"

	"megammap"
)

func main() {
	// A one-node testbed with the paper's (scaled) storage hierarchy.
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())

	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)

		// A nonvolatile vector: its name is a URL, so contents stage out
		// to the parallel filesystem and survive the job.
		v, err := megammap.Open[float64](cl, "file:///data/series.bin", megammap.Float64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		const n = 1 << 18 // 2Mi of data through a 64Ki pcache
		v.Resize(n)
		v.BoundMemory(64 << 10)

		// Write-only phase: no read-before-write, asynchronous commits.
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, float64(i)*0.5)
		}
		v.TxEnd()

		// Read-only phase: transaction-informed prefetching hides the
		// refault latency of everything the bound evicted.
		var sum float64
		v.SeqTxBegin(0, n, megammap.ReadOnly)
		for i := int64(0); i < n; i++ {
			sum += v.Get(i)
		}
		v.TxEnd()

		faults, prefetches, evictions := d.Stats()
		fmt.Printf("sum            = %.1f (expect %.1f)\n", sum, 0.5*float64(n)*float64(n-1)/2)
		fmt.Printf("virtual time   = %v\n", p.Now())
		fmt.Printf("sync faults    = %d\n", faults)
		fmt.Printf("async prefetch = %d\n", prefetches)
		fmt.Printf("evictions      = %d\n", evictions)
		for tier, used := range d.Hermes().TierUsage() {
			if used > 0 {
				fmt.Printf("scache %-5s   = %d KiB\n", tier, used>>10)
			}
		}
		if err := d.Shutdown(p); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("persisted      = %d bytes at file:///data/series.bin\n", c.PFSSize("/data/series.bin"))
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}
