// Gray-Scott example: the paper's reaction-diffusion simulation on the
// public API. The 3-D grid lives in MegaMmap shared vectors; ranks own
// Z-slabs, halo planes arrive transparently through the DSM, and
// checkpoints persist through the asynchronous staging engine while the
// next step computes.
package main

import (
	"fmt"
	"log"

	"megammap"
	"megammap/internal/apps/grayscott"
)

const (
	nodes = 2
	ranks = 8
	side  = 32
	steps = 6
)

func main() {
	c := megammap.NewCluster(megammap.DefaultTestbed(nodes))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	w := megammap.NewWorld(c, ranks)

	cfg := grayscott.Config{
		L: side, Steps: steps, PlotGap: 2,
		CkptURL:    "file:///out/grid.bin",
		BoundBytes: 256 << 10,
	}
	err := w.Run(func(r *megammap.Rank) {
		res, err := grayscott.Mega(r, d, cfg)
		if err != nil {
			r.Fail(err)
			return
		}
		if r.Rank() == 0 {
			fmt.Printf("grid            = %d^3 cells (%d KiB)\n", side, res.GridBytes>>10)
			fmt.Printf("checksum        = %.6f\n", res.Checksum)
			fmt.Printf("checkpoints     = %d\n", res.Checkpoints)
			fmt.Printf("virtual runtime = %v\n", r.Proc().Now())
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checkpoint file = %d bytes on the PFS\n", c.PFSSize("/out/grid.bin"))
	for tier, used := range d.Hermes().TierUsage() {
		fmt.Printf("scache %-5s    = %d KiB\n", tier, used>>10)
	}
}
