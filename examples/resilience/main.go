// Resilience example: the paper's §V discussion items in action —
// scache replication that survives a node failure, CRC page checksums
// that catch a silently flipped bit, and access-key protection on a
// classified vector.
package main

import (
	"fmt"
	"log"
	"strings"

	"megammap"
)

func main() {
	replication()
	corruption()
	accessControl()
}

func replication() {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	c := megammap.NewCluster(megammap.DefaultTestbed(3))
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, err := megammap.Open[int64](cl, "survivor", megammap.Int64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		const n = 1 << 14
		v.Resize(n)
		v.BoundMemory(2 * v.PageSize())
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i*i%7919)
		}
		v.TxEnd()
		v.Close()

		d.Hermes().FailNode(0) // pull the plug on node 0
		var sum int64
		v.SeqTxBegin(0, n, megammap.ReadOnly)
		for i, val := range v.All(0, n) {
			if val != i*i%7919 {
				log.Fatalf("data lost at %d", i)
			}
			sum += val
		}
		v.TxEnd()
		fmt.Printf("replication: node 0 failed, all %d elements intact (sum %d)\n", n, sum)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}

func corruption() {
	cfg := megammap.DefaultConfig()
	cfg.ChecksumPages = true
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ := megammap.Open[int64](cl, "checked", megammap.Int64Codec{})
		v.Resize(4096)
		v.SeqTxBegin(0, 4096, megammap.WriteOnly)
		for i := int64(0); i < 4096; i++ {
			v.Set(i, i)
		}
		v.TxEnd()
		v.Close()

		// A cosmic ray strikes whichever tier holds page 0.
		for _, node := range c.Nodes {
			for _, dev := range node.Devices {
				for _, key := range dev.List() {
					name := d.Hermes().DisplayName(key)
					if strings.HasPrefix(name, "checked/") {
						dev.CorruptBit(key, 512, 2)
						fmt.Printf("corruption: flipped a bit of %q on %s\n", name, dev.Name())
						goto read
					}
				}
			}
		}
	read:
		v.SeqTxBegin(0, 4096, megammap.ReadOnly)
		_ = v.Get(0)
		v.TxEnd()
	})
	err := c.Engine.Run()
	if err != nil && strings.Contains(err.Error(), "checksum mismatch") {
		fmt.Printf("corruption: detected as expected: %v\n", err)
	} else {
		log.Fatalf("corruption went undetected: %v", err)
	}
}

func accessControl() {
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		if _, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{},
			megammap.WithAccessKey("need-to-know")); err != nil {
			log.Fatal(err)
		}
		_, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{})
		fmt.Printf("access control: open without key -> %v\n", err)
		if _, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{},
			megammap.WithAccessKey("need-to-know")); err != nil {
			log.Fatal(err)
		}
		fmt.Println("access control: open with key -> ok")
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}
