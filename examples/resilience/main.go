// Resilience example: the paper's §V discussion items in action —
// scache replication that survives a node failure, CRC page checksums
// whose mismatches heal transparently from a replica (and surface a
// typed error when nothing can repair them), a scripted crash/revival
// cycle closed by background anti-entropy re-replication, and
// access-key protection on a classified vector.
package main

import (
	"errors"
	"fmt"
	"log"
	"strings"

	"megammap"
)

func main() {
	replication()
	selfHealing()
	corruption()
	revival()
	accessControl()
}

func replication() {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	c := megammap.NewCluster(megammap.DefaultTestbed(3))
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, err := megammap.Open[int64](cl, "survivor", megammap.Int64Codec{})
		if err != nil {
			log.Fatal(err)
		}
		const n = 1 << 14
		v.Resize(n)
		v.BoundMemory(2 * v.PageSize())
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i*i%7919)
		}
		v.TxEnd()
		v.Close()

		d.Hermes().FailNode(0) // pull the plug on node 0
		var sum int64
		v.SeqTxBegin(0, n, megammap.ReadOnly)
		for i, val := range v.All(0, n) {
			if val != i*i%7919 {
				log.Fatalf("data lost at %d", i)
			}
			sum += val
		}
		v.TxEnd()
		fmt.Printf("replication: node 0 failed, all %d elements intact (sum %d)\n", n, sum)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}

// selfHealing flips a bit on a replicated, checksummed page: the next
// read detects the mismatch, pulls the replica's good bytes, rewrites
// the primary, and returns correct data — no error surfaces.
func selfHealing() {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	cfg.ChecksumPages = true
	c := megammap.NewCluster(megammap.DefaultTestbed(2))
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ := megammap.Open[int64](cl, "healed", megammap.Int64Codec{})
		v.Resize(4096)
		v.SeqTxBegin(0, 4096, megammap.WriteOnly)
		for i := int64(0); i < 4096; i++ {
			v.Set(i, i)
		}
		v.TxEnd()
		v.Close()

		corruptFirstPage(c, d, "healed/")
		v.SeqTxBegin(0, 4096, megammap.ReadOnly)
		for i := int64(0); i < 4096; i++ {
			if v.Get(i) != i {
				log.Fatalf("self-healing returned wrong data at %d", i)
			}
		}
		v.TxEnd()
		fmt.Printf("self-healing: bit flip repaired from the replica (%d page repair)\n",
			d.PageRepairs())
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}

// corruption shows the typed-failure side: with no replica and no clean
// backend copy, the mismatch is unrepairable and the read surfaces
// megammap.ErrCorrupt — never silently wrong data.
func corruption() {
	cfg := megammap.DefaultConfig()
	cfg.ChecksumPages = true
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ := megammap.Open[int64](cl, "checked", megammap.Int64Codec{})
		v.Resize(4096)
		v.SeqTxBegin(0, 4096, megammap.WriteOnly)
		for i := int64(0); i < 4096; i++ {
			v.Set(i, i)
		}
		v.TxEnd()
		v.Close()

		corruptFirstPage(c, d, "checked/")
		v.SeqTxBegin(0, 4096, megammap.ReadOnly)
		_ = v.Get(0)
		v.TxEnd()
	})
	err := c.Engine.Run()
	if err != nil && errors.Is(err, megammap.ErrCorrupt) {
		fmt.Printf("corruption: unrepairable flip surfaced as typed error: %v\n", err)
	} else {
		log.Fatalf("corruption went undetected: %v", err)
	}
}

// revival scripts the full self-healing cycle with a fault plan: node
// 1's storage crashes at 50ms and restarts cold at 100ms. With only
// two nodes, nothing can host distinct backup copies during the
// outage, so the repair queue holds its entries until the revival —
// then the anti-entropy daemon re-replicates everything back onto the
// returned node and the redundancy window closes.
func revival() {
	cfg := megammap.DefaultConfig()
	cfg.Replicas = 1
	c := megammap.NewCluster(megammap.DefaultTestbed(2))
	plan, err := megammap.ParseFaultSpec("seed=42;crash=1@50ms;revive=1@100ms")
	if err != nil {
		log.Fatal(err)
	}
	c.InstallFaults(*plan)
	d := megammap.NewDSM(c, cfg)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		v, _ := megammap.Open[int64](cl, "phoenix", megammap.Int64Codec{})
		const n = 1 << 14
		v.Resize(n)
		v.BoundMemory(2 * v.PageSize())
		v.SeqTxBegin(0, n, megammap.WriteOnly)
		for i := int64(0); i < n; i++ {
			v.Set(i, i^0x2a)
		}
		v.TxEnd()
		v.Close()

		// Ride out the crash window degraded: reads fail over to backups.
		for p.Now() < 60*megammap.Millisecond {
			p.Sleep(10 * megammap.Millisecond)
		}
		v.SeqTxBegin(0, n, megammap.ReadOnly)
		for i := int64(0); i < n; i++ {
			if v.Get(i) != i^0x2a {
				log.Fatalf("data lost during the outage at %d", i)
			}
		}
		v.TxEnd()

		// Wait past the revival for the repair queue to drain.
		for i := 0; p.Now() < 110*megammap.Millisecond || d.Hermes().UnderReplicated() > 0; i++ {
			if i > 1000 {
				log.Fatal("repair queue did not drain")
			}
			p.Sleep(5 * megammap.Millisecond)
		}
		lost, restored, ok := d.Hermes().RedundancyWindow()
		if !ok {
			log.Fatal("redundancy window never closed")
		}
		fmt.Printf("revival: crash at 50ms, cold restart at 100ms, full redundancy after %v (window %v -> %v)\n",
			restored-lost, lost, restored)
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}

// corruptFirstPage strikes a cosmic ray into whichever tier holds the
// vector's first stored primary page (replica "@n" and backup "!bak"
// copies are skipped: the demo corrupts the copy reads hit first).
func corruptFirstPage(c *megammap.Cluster, d *megammap.DSM, prefix string) {
	for _, node := range c.Nodes {
		for _, dev := range node.Devices {
			for _, key := range dev.List() {
				name := d.Hermes().DisplayName(key)
				if strings.HasPrefix(name, prefix) && !strings.ContainsAny(name, "@!") {
					dev.CorruptBit(key, 512, 2)
					fmt.Printf("corruption: flipped a bit of %q on %s\n", name, dev.Name())
					return
				}
			}
		}
	}
	log.Fatalf("no stored page with prefix %q found", prefix)
}

func accessControl() {
	c := megammap.NewCluster(megammap.DefaultTestbed(1))
	d := megammap.NewDSM(c, megammap.DefaultConfig())
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		if _, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{},
			megammap.WithAccessKey("need-to-know")); err != nil {
			log.Fatal(err)
		}
		_, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{})
		fmt.Printf("access control: open without key -> %v\n", err)
		if _, err := megammap.Open[byte](cl, "classified", megammap.ByteCodec{},
			megammap.WithAccessKey("need-to-know")); err != nil {
			log.Fatal(err)
		}
		fmt.Println("access control: open with key -> ok")
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		log.Fatal(err)
	}
}
