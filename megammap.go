// Package megammap is the public API of the MegaMmap reproduction: a
// tiered, nonvolatile software distributed shared memory (DSM) over a
// simulated HPC testbed, after "MegaMmap: Blurring the Boundary Between
// Memory and Storage for Data-Intensive Workloads" (SC 2024).
//
// A program builds a simulated cluster, deploys the DSM on it, spawns
// ranks (vtime processes), and manipulates shared vectors through
// intent-declaring transactions:
//
//	c := megammap.NewCluster(megammap.DefaultTestbed(4))
//	d := megammap.NewDSM(c, megammap.DefaultConfig())
//	w := megammap.NewWorld(c, 16)
//	err := w.Run(func(r *megammap.Rank) {
//	    cl := d.NewClient(r.Proc(), r.Node().ID)
//	    pts, _ := megammap.Open[float64](cl, "pq:///points.parquet:x", megammap.Float64Codec{})
//	    pts.BoundMemory(1 << 20)
//	    pts.Pgas(r.Rank(), r.Size())
//	    pts.SeqTxBegin(pts.LocalOff(), pts.LocalLen(), megammap.ReadOnly)
//	    // ... iterate ...
//	    pts.TxEnd()
//	    if r.Rank() == 0 {
//	        _ = d.Shutdown(r.Proc())
//	    }
//	})
//
// Everything — storage devices, network fabric, the runtime's worker
// scheduling, prefetching and tier organization — runs on a deterministic
// discrete-event clock, so runs are reproducible and timing results are
// meaningful performance models rather than host noise.
package megammap

import (
	"megammap/internal/cluster"
	"megammap/internal/config"
	"megammap/internal/control"
	"megammap/internal/core"
	"megammap/internal/device"
	"megammap/internal/faults"
	"megammap/internal/mpi"
	"megammap/internal/simnet"
	"megammap/internal/stager"
	"megammap/internal/telemetry"
	"megammap/internal/vtime"
)

// Simulation substrate.
type (
	// Duration is virtual time in nanoseconds.
	Duration = vtime.Duration
	// Proc is a simulation process; every rank body receives one.
	Proc = vtime.Proc
	// Engine is the discrete-event engine driving a cluster.
	Engine = vtime.Engine
	// Cluster is the simulated testbed (nodes, devices, fabric, PFS).
	Cluster = cluster.Cluster
	// ClusterSpec configures a testbed.
	ClusterSpec = cluster.Spec
	// TierSpec names one storage tier present on every node.
	TierSpec = cluster.TierSpec
	// Node is one machine of the testbed.
	Node = cluster.Node
	// DeviceProfile describes a storage device class.
	DeviceProfile = device.Profile
	// LinkProfile describes a network fabric class.
	LinkProfile = simnet.LinkProfile
	// Monitor samples cluster resource usage (pymonitor analog).
	Monitor = cluster.Monitor
)

// Virtual time units.
const (
	Nanosecond  = vtime.Nanosecond
	Microsecond = vtime.Microsecond
	Millisecond = vtime.Millisecond
	Second      = vtime.Second
)

// Capacity units in bytes.
const (
	KB = device.KB
	MB = device.MB
	GB = device.GB
)

// The DSM.
type (
	// DSM is a MegaMmap deployment.
	DSM = core.DSM
	// Config tunes the MegaMmap runtime.
	Config = core.Config
	// Client is the per-rank library handle.
	Client = core.Client
	// AccessFlags declare transaction intent.
	AccessFlags = core.AccessFlags
	// Tx is the transaction interface (custom access patterns).
	Tx = core.Tx
	// SeqTx is a sequential transaction.
	SeqTx = core.SeqTx
	// RandTx is a seeded pseudo-random transaction.
	RandTx = core.RandTx
	// StrideTx is a strided transaction.
	StrideTx = core.StrideTx
	// Vector is the shared memory abstraction.
	Vector[T any] = core.Vector[T]
	// Codec serializes fixed-size vector elements.
	Codec[T any] = core.Codec[T]
	// VectorOpt configures Open.
	VectorOpt = core.VectorOpt
	// MemoryTask is the runtime's unit of work (diagnostics).
	MemoryTask = core.MemoryTask
)

// UMap-style per-vector paging-policy hints (Config.Hints): declare how
// a vector is accessed and the runtime adapts prefetch depth, fill
// trust, and eviction bias — without touching the application. Hints
// change scheduling only; results stay byte-identical with hints on or
// off.
type (
	// VectorHint attaches a paging policy to one vector (matched by
	// name, or by prefix with a trailing '*').
	VectorHint = core.VectorHint
	// RegionHint overrides the vector policy for an element range.
	RegionHint = core.RegionHint
	// PatternClass declares a vector's access pattern.
	PatternClass = core.PatternClass
	// EvictClass biases pcache victim selection.
	EvictClass = core.EvictClass
)

// Access-pattern and eviction classes.
const (
	PatternDefault    = core.PatternDefault
	PatternSequential = core.PatternSequential
	PatternRandom     = core.PatternRandom
	PatternIrregular  = core.PatternIrregular

	EvictDefault = core.EvictDefault
	EvictStream  = core.EvictStream
	EvictPin     = core.EvictPin
)

// ParsePatternClass parses the config spelling of an access-pattern
// class (sequential|random|irregular).
func ParsePatternClass(s string) (PatternClass, error) { return core.ParsePatternClass(s) }

// ParseEvictClass parses the config spelling of an eviction class
// (default|stream|pin).
func ParseEvictClass(s string) (EvictClass, error) { return core.ParseEvictClass(s) }

// ControlConfig tunes the adaptive control plane (Config.Control): the
// closed-loop governors that pace anti-entropy repair, incremental
// scrubbing, prefetch depth, and eviction/write-back from utilization
// signals sampled each control tick.
type ControlConfig = control.Config

// DefaultControlConfig returns the control plane enabled with the
// standard governor tuning.
func DefaultControlConfig() ControlConfig { return control.Default() }

// Built-in codecs.
type (
	Float64Codec = core.Float64Codec
	Float32Codec = core.Float32Codec
	Int64Codec   = core.Int64Codec
	Int32Codec   = core.Int32Codec
	ByteCodec    = core.ByteCodec
)

// Transaction intent bits (paper Fig. 3 coherence hints).
const (
	Read       = core.Read
	Write      = core.Write
	Append     = core.Append
	Global     = core.Global
	Collective = core.Collective
	ReadOnly   = core.ReadOnly
	WriteOnly  = core.WriteOnly
	ReadWrite  = core.ReadWrite
)

// Message passing (application structure; paper §III-A allows MPI-style
// coordination next to the DSM).
type (
	// World is a set of ranks.
	World = mpi.World
	// Rank is one process of a world.
	Rank = mpi.Rank
)

// Observability: the vtime-native telemetry plane. Install it on a
// cluster before constructing the DSM (cluster.InstallTelemetry), then
// read metrics tables, the span arena, or a Chrome trace after the run.
type (
	// Telemetry bundles the metrics registry, span tracer, and resource
	// sampler of one cluster.
	Telemetry = telemetry.Telemetry
	// TelemetryOptions selects which telemetry sub-planes to enable.
	TelemetryOptions = telemetry.Options
	// MetricKey addresses one series in the metrics registry
	// (Telemetry.Registry().Value).
	MetricKey = telemetry.Key
	// Span is one traced operation of the fault path.
	Span = telemetry.Span
	// TaskTrace is the task-level trace view (Config.TraceTasks).
	TaskTrace = core.TaskTrace
)

// The fault plane: deterministic scripted failures (message loss, device
// errors, node crashes and cold revivals) plus the self-healing layer's
// typed errors. Install a plan with Cluster.InstallFaults before
// constructing the DSM.
type (
	// FaultPlan scripts one deterministic fault schedule.
	FaultPlan = faults.Plan
	// Injector applies a FaultPlan (returned by Cluster.InstallFaults).
	Injector = faults.Injector
)

// ParseFaultSpec parses the compact fault-plan DSL, e.g.
// "seed=7;drop=0.02;crash=1@40ms;revive=1@80ms".
func ParseFaultSpec(spec string) (*FaultPlan, error) { return faults.ParseSpec(spec) }

// Typed fault errors (match with errors.Is).
var (
	// ErrNodeDown marks reads that lost their only copy to a node crash.
	ErrNodeDown = faults.ErrNodeDown
	// ErrCorrupt marks checksum mismatches no replica or backend copy
	// could repair.
	ErrCorrupt = faults.ErrCorrupt
)

// URL is a parsed dataset locator ("proto://path:param").
type URL = stager.URL

// NewCluster builds a simulated testbed on a fresh engine.
func NewCluster(spec ClusterSpec) *Cluster { return cluster.New(spec) }

// DefaultTestbed mirrors the paper's per-node hardware at 1/1024 scale.
func DefaultTestbed(nodes int) ClusterSpec { return cluster.DefaultTestbed(nodes) }

// NewDSM deploys MegaMmap on a cluster.
func NewDSM(c *Cluster, cfg Config) *DSM { return core.New(c, cfg) }

// DefaultConfig returns the evaluation's standard DSM configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewWorld creates nprocs ranks distributed block-wise over the nodes.
func NewWorld(c *Cluster, nprocs int) *World { return mpi.NewWorld(c, nprocs) }

// NewMonitor samples cluster resource usage with the given period until
// stop fires.
func NewMonitor(c *Cluster, period Duration, stop *vtime.Event) *Monitor {
	return cluster.NewMonitor(c, period, stop)
}

// Open connects to (or creates) the shared vector identified by name; a
// name containing "://" designates a nonvolatile vector staged to that
// URL. See core.Open.
func Open[T any](c *Client, name string, codec Codec[T], opts ...VectorOpt) (*Vector[T], error) {
	return core.Open[T](c, name, codec, opts...)
}

// WithPageSize selects a vector's page size at creation.
func WithPageSize(n int64) VectorOpt { return core.WithPageSize(n) }

// WithAccessKey protects a vector: subsequent opens must present the same
// key (the paper's §V security extension).
func WithAccessKey(key string) VectorOpt { return core.WithAccessKey(key) }

// ParseURL parses a dataset locator.
func ParseURL(s string) (URL, error) { return stager.ParseURL(s) }

// Deployment is a cluster + runtime configuration parsed from YAML (the
// paper's configuration-file interface).
type Deployment = config.Deployment

// LoadDeployment parses a YAML deployment document; Build() on the
// result constructs the cluster and DSM.
func LoadDeployment(doc string) (*Deployment, error) { return config.Load(doc) }

// Device profiles for custom testbeds.
var (
	DRAMProfile = device.DRAMProfile
	NVMeProfile = device.NVMeProfile
	SSDProfile  = device.SSDProfile
	HDDProfile  = device.HDDProfile
	PFSProfile  = device.PFSProfile
)

// Network profiles for custom testbeds.
var (
	RoCE40 = simnet.RoCE40
	TCP10  = simnet.TCP10
)
