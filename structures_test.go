package megammap_test

import (
	"fmt"
	"testing"

	"megammap"
)

func newHarness(nodes int) (*megammap.Cluster, *megammap.DSM) {
	c := megammap.NewCluster(megammap.DefaultTestbed(nodes))
	cfg := megammap.DefaultConfig()
	cfg.DefaultPageSize = 8 << 10
	return c, megammap.NewDSM(c, cfg)
}

func TestMatrixRoundTrip(t *testing.T) {
	c, d := newHarness(1)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		m, err := megammap.OpenMatrix[int64](cl, "mat", megammap.Int64Codec{}, 64, 48)
		if err != nil {
			t.Error(err)
			return
		}
		m.RowTxBegin(0, 64, megammap.WriteOnly)
		for r := int64(0); r < 64; r++ {
			for col := int64(0); col < 48; col++ {
				m.SetAt(r, col, r*1000+col)
			}
		}
		m.TxEnd()
		m.RowTxBegin(0, 64, megammap.ReadOnly)
		row := make([]int64, 48)
		m.GetRow(17, row)
		for col, v := range row {
			if v != 17*1000+int64(col) {
				t.Errorf("row17[%d] = %d", col, v)
				break
			}
		}
		if m.At(63, 47) != 63*1000+47 {
			t.Error("At corner wrong")
		}
		m.TxEnd()
		// Column access through a strided transaction.
		m.ColTxBegin(5, 0, 64, megammap.ReadOnly)
		for r := int64(0); r < 64; r++ {
			if m.At(r, 5) != r*1000+5 {
				t.Errorf("col5[%d] wrong", r)
				break
			}
		}
		m.TxEnd()
		if err := d.Shutdown(p); err != nil {
			t.Error(err)
		}
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixDimensionValidation(t *testing.T) {
	c, d := newHarness(1)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		if _, err := megammap.OpenMatrix[int64](cl, "bad", megammap.Int64Codec{}, 0, 5); err == nil {
			t.Error("zero rows accepted")
		}
		if _, err := megammap.OpenMatrix[int64](cl, "m", megammap.Int64Codec{}, 8, 8); err != nil {
			t.Error(err)
		}
		if _, err := megammap.OpenMatrix[int64](cl, "m", megammap.Int64Codec{}, 4, 4); err == nil {
			t.Error("mismatched reopen accepted")
		}
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMatrixParallelTranspose(t *testing.T) {
	const nodes, ranks = 2, 4
	const rows, cols = 96, 32
	c, d := newHarness(nodes)
	w := megammap.NewWorld(c, ranks)
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		src, err := megammap.OpenMatrix[int64](cl, "src", megammap.Int64Codec{}, rows, cols)
		if err != nil {
			r.Fail(err)
			return
		}
		dst, err := megammap.OpenMatrix[int64](cl, "dst", megammap.Int64Codec{}, cols, rows)
		if err != nil {
			r.Fail(err)
			return
		}
		r0, n := src.RowPartition(r.Rank(), r.Size())
		src.RowTxBegin(r0, n, megammap.WriteOnly)
		for row := r0; row < r0+n; row++ {
			for col := int64(0); col < cols; col++ {
				src.SetAt(row, col, row*cols+col)
			}
		}
		src.TxEnd()
		cl.Barrier("filled", ranks)
		if err := src.TransposeInto(dst, r0, n); err != nil {
			r.Fail(err)
			return
		}
		cl.Barrier("transposed", ranks)
		// Every rank verifies a slice of the transpose globally.
		dst.RowTxBegin(0, cols, megammap.ReadOnly|megammap.Global)
		for col := int64(r.Rank()); col < cols; col += int64(r.Size()) {
			for row := int64(0); row < rows; row++ {
				if got := dst.At(col, row); got != row*cols+col {
					r.Fail(fmt.Errorf("dst[%d][%d] = %d, want %d", col, row, got, row*cols+col))
					return
				}
			}
		}
		dst.TxEnd()
		cl.Barrier("checked", ranks)
		if r.Rank() == 0 {
			if err := d.Shutdown(r.Proc()); err != nil {
				r.Fail(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogMultiRankAppend(t *testing.T) {
	const ranks, per = 3, 200
	c, d := newHarness(1)
	w := megammap.NewWorld(c, ranks)
	err := w.Run(func(r *megammap.Rank) {
		cl := d.NewClient(r.Proc(), r.Node().ID)
		l, err := megammap.OpenLog[int64](cl, "events", megammap.Int64Codec{})
		if err != nil {
			r.Fail(err)
			return
		}
		l.AppendTxBegin(per)
		for i := 0; i < per; i++ {
			l.Append(int64(r.Rank()*100000 + i))
		}
		l.TxEnd()
		cl.Barrier("appended", ranks)
		if l.Len() != ranks*per {
			r.Fail(fmt.Errorf("log len = %d, want %d", l.Len(), ranks*per))
			return
		}
		// Every record present exactly once.
		seen := make(map[int64]bool)
		l.Scan(0, l.Len(), func(i int64, v int64) bool {
			if seen[v] {
				r.Fail(fmt.Errorf("duplicate record %d", v))
				return false
			}
			seen[v] = true
			return true
		})
		if len(seen) != ranks*per {
			r.Fail(fmt.Errorf("scanned %d distinct records, want %d", len(seen), ranks*per))
			return
		}
		cl.Barrier("scanned", ranks)
		if r.Rank() == 0 {
			_ = d.Shutdown(r.Proc())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLogScanEarlyStopAndClamp(t *testing.T) {
	c, d := newHarness(1)
	c.Engine.Spawn("app", func(p *megammap.Proc) {
		cl := d.NewClient(p, 0)
		l, _ := megammap.OpenLog[int64](cl, "short", megammap.Int64Codec{})
		l.AppendTxBegin(10)
		for i := int64(0); i < 10; i++ {
			l.Append(i)
		}
		l.TxEnd()
		count := 0
		l.Scan(0, 100, func(i, v int64) bool { // clamped to Len
			count++
			return count < 4 // early stop
		})
		if count != 4 {
			t.Errorf("scanned %d, want 4", count)
		}
		l.Scan(8, 3, func(i, v int64) bool { t.Error("inverted range scanned"); return false })
		_ = d.Shutdown(p)
	})
	if err := c.Engine.Run(); err != nil {
		t.Fatal(err)
	}
}
